"""The sweep run journal: append-only JSONL shard lifecycle telemetry.

A multi-seed sweep is a black box between launch and final merge unless
every worker narrates what it is doing.  The *run journal* is that
narration: one JSONL file next to the sweep's checkpoint directory, to
which the orchestrator and every worker append structured lifecycle
events — shard scheduled / started / heartbeat / progress / completed /
failed, plus the watchdog's stall verdicts.  The journal is the contract
a future campaign service will stream, so it is versioned, keyed to the
sweep fingerprint, and deliberately split into two domains:

**Deterministic fields** (top level).  Everything derived from the
simulation itself — seeds, sim-time progress marks, Table 1-4
statistics, metrics snapshots.  Identical runs produce identical
values; :func:`canonical_journal` projects a journal onto exactly these
fields (dropping the wall-driven heartbeat stream) and re-serialises
them in a canonical order, so the projection is byte-stable across
``--jobs`` counts and shard interleavings.

**The non-deterministic envelope** (the ``"wall"`` key).  Wall-clock
timestamps, wall durations, events/sec, peak RSS, PIDs.  Every real
clock read in this module happens inside :func:`_envelope` — the single
suppressed wall-clock site (``repro.obs.journal`` is lint-scoped into
the sim domain precisely so the suppression is load-bearing; see
``repro.analysis.config.LintConfig.sim_domain_modules``).

Concurrent writers are safe: each event is one ``os.write`` on an
``O_APPEND`` descriptor, so lines from parallel workers interleave but
never tear on a local filesystem.  Readers tolerate a torn final line
(a worker killed mid-write) by never consuming past the last newline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from time import time as _wall_clock  # repro: allow[DET002] journal envelope timestamps only
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

#: Version of the journal schema; bump on any layout change so stream
#: consumers (and ``repro-bt report --check``) can refuse mis-parses.
JOURNAL_VERSION = 1

#: Conventional journal file name inside a sweep output directory.
JOURNAL_NAME = "journal.jsonl"

# -- event types -------------------------------------------------------------

SWEEP_STARTED = "sweep_started"
SWEEP_COMPLETED = "sweep_completed"
SWEEP_ABORTED = "sweep_aborted"
SHARD_SCHEDULED = "shard_scheduled"
SHARD_STARTED = "shard_started"
SHARD_HEARTBEAT = "shard_heartbeat"
SHARD_PROGRESS = "shard_progress"
SHARD_COMPLETED = "shard_completed"
SHARD_FAILED = "shard_failed"
SHARD_STALLED = "shard_stalled"
SHARD_REQUEUED = "shard_requeued"
SHARD_CACHE_HIT = "shard_cache_hit"

#: Deterministic (top-level) fields required per event type, beyond the
#: base ``{"v", "event", "fp", "wall"}``.  The schema is *closed*: any
#: other top-level key is a validation error, which is what keeps
#: nondeterministic data fenced inside the envelope.
EVENT_SCHEMA: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {
    # event: (required extra fields, optional extra fields)
    # The stratification fields are deterministic (they change what is
    # simulated); the *backend* that ran the shards is machinery and
    # rides in the wall envelope, keeping canonical journals identical
    # across backends.
    SWEEP_STARTED: (
        frozenset({"root_seed", "seeds"}),
        frozenset({"boost", "boost_seeds"}),
    ),
    SWEEP_COMPLETED: (frozenset({"seeds"}), frozenset()),
    SWEEP_ABORTED: (frozenset({"reason"}), frozenset()),
    SHARD_SCHEDULED: (frozenset({"seed", "index"}), frozenset()),
    SHARD_STARTED: (frozenset({"seed", "index"}), frozenset()),
    SHARD_HEARTBEAT: (frozenset({"seed"}), frozenset()),
    SHARD_PROGRESS: (
        frozenset({"seed", "sim_time", "frac"}),
        frozenset({"pending"}),
    ),
    SHARD_COMPLETED: (
        frozenset({"seed", "index", "duration", "total_items", "statistics"}),
        frozenset({"events", "metrics"}),
    ),
    SHARD_FAILED: (frozenset({"seed", "index", "error"}), frozenset()),
    SHARD_STALLED: (frozenset({"seed"}), frozenset()),
    SHARD_REQUEUED: (frozenset({"seed"}), frozenset()),
    # Cache hits are real (the CI smoke job counts them) but whether a
    # shard was simulated or served from cache is an artifact of prior
    # runs, not of the sweep itself — so the event stays out of the
    # canonical projection, keeping fresh and fully-cached runs
    # byte-identical there.
    SHARD_CACHE_HIT: (frozenset({"seed", "index"}), frozenset()),
}

#: Events whose deterministic fields are reproduced identically by
#: identical runs — the canonical projection keeps exactly these.  The
#: wall-driven heartbeat stream (its cadence depends on worker speed)
#: and the watchdog/failure events (they only exist when something went
#: wrong) are excluded.
CANONICAL_EVENTS: FrozenSet[str] = frozenset(
    {
        SWEEP_STARTED,
        SHARD_SCHEDULED,
        SHARD_STARTED,
        SHARD_PROGRESS,
        SHARD_COMPLETED,
        SWEEP_COMPLETED,
    }
)

#: Watchdog reactions a sweep can be configured with.
WATCHDOG_POLICIES = ("log", "requeue", "abort")


def _envelope(extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """The non-deterministic envelope of one event.

    The only place this module reads a real clock.  Everything returned
    here lands under the event's ``"wall"`` key and is stripped by
    :func:`canonical_events`.
    """
    env: Dict[str, object] = {
        "ts": _wall_clock(),
        "pid": os.getpid(),
    }
    if extra:
        env.update(extra)
    return env


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if rss > 1 << 32:  # pragma: no cover - macOS
        rss //= 1024
    return int(rss)


# -- telemetry configuration -------------------------------------------------


@dataclass(frozen=True)
class SweepTelemetry:
    """Sweep-level telemetry switchboard (pass to ``repro.api.sweep``).

    ``journal`` names the JSONL file; conventionally
    ``<out>/journal.jsonl`` next to the ``<out>/shards`` checkpoint
    directory.  ``heartbeat_interval`` is the wall-clock cadence of
    worker liveness pings, ``heartbeat_deadline`` how long the watchdog
    tolerates silence from a started shard before flagging it stalled,
    and ``policy`` what it then does: ``log`` (warn and keep waiting),
    ``requeue`` (resubmit the shard, up to ``max_retries`` extra
    attempts), or ``abort`` (tear the sweep down).  ``progress_ticks``
    sets how many sim-time progress events each shard emits (they fire
    at fixed fractions of the campaign duration, so their deterministic
    fields are byte-stable).  ``openmetrics_out``, when set, is
    refreshed every ``poll_interval`` with an OpenMetrics textfile for
    node-exporter-style scraping.
    """

    journal: Union[str, Path]
    heartbeat_interval: float = 2.0
    heartbeat_deadline: float = 30.0
    policy: str = "log"
    max_retries: int = 1
    progress_ticks: int = 10
    poll_interval: float = 0.5
    openmetrics_out: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.policy not in WATCHDOG_POLICIES:
            raise ValueError(
                f"unknown watchdog policy {self.policy!r}; "
                f"expected one of {WATCHDOG_POLICIES}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_deadline <= 0:
            raise ValueError("heartbeat interval/deadline must be positive")
        if self.progress_ticks < 1:
            raise ValueError("progress_ticks must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass(frozen=True)
class ShardTelemetry:
    """What one worker needs to narrate its shard (picklable).

    Built by the orchestrator from a :class:`SweepTelemetry` and handed
    to :func:`repro.parallel.shard.run_shard` across the process
    boundary.  ``progress_interval`` is in *simulated* seconds (derived
    from the campaign duration and ``progress_ticks``);
    ``heartbeat_interval`` is in wall seconds.
    """

    journal: str
    fingerprint: str
    index: int
    heartbeat_interval: float = 2.0
    progress_interval: float = 0.0


# -- writing -----------------------------------------------------------------


class JournalWriter:
    """Append-only journal emitter; one atomic write per event.

    Safe to share between the worker's main thread and its heartbeat
    thread, and between concurrent worker processes appending to the
    same file.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )

    def emit(
        self,
        event: str,
        seed: Optional[int] = None,
        wall: Optional[Dict[str, object]] = None,
        **fields: object,
    ) -> None:
        """Append one event; deterministic fields as keywords.

        Anything timing-dependent goes in ``wall`` — it is merged into
        the non-deterministic envelope, never into the top level.
        """
        if self._fd is None:
            raise ValueError("journal writer is closed")
        record: Dict[str, object] = {
            "v": JOURNAL_VERSION,
            "event": event,
            "fp": self.fingerprint,
        }
        if seed is not None:
            record["seed"] = int(seed)
        record.update(fields)
        record["wall"] = _envelope(wall)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullJournal:
    """Journal used when telemetry is off: ``emit`` is a no-op.

    A single shared instance (:data:`NULL_JOURNAL`) keeps the disabled
    path at one attribute lookup and one empty call, mirroring
    :data:`repro.obs.metrics.NULL_SERIES`.
    """

    __slots__ = ()

    path = None
    fingerprint = ""

    def emit(
        self,
        event: str,
        seed: Optional[int] = None,
        wall: Optional[Dict[str, object]] = None,
        **fields: object,
    ) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


#: The shared no-op journal.
NULL_JOURNAL = NullJournal()


# -- reading -----------------------------------------------------------------


class JournalReader:
    """Incremental (tail-capable) journal reader.

    ``poll()`` returns every *complete* event line appended since the
    previous call; a torn trailing line (no newline yet) is left for the
    next poll.  Unparsable complete lines are skipped — validation, not
    tailing, is where they are reported.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> List[dict]:
        """New complete events since the last poll (oldest first)."""
        if not self.path.exists():
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        if not data:
            return []
        end = data.rfind(b"\n")
        if end < 0:
            return []
        chunk = data[: end + 1]
        self._offset += len(chunk)
        events = []
        for raw in chunk.splitlines():
            if not raw.strip():
                continue
            try:
                events.append(json.loads(raw.decode("utf-8")))
            except ValueError:
                continue
        return events


def read_journal(path: Union[str, Path]) -> List[dict]:
    """Every complete event of a journal file, oldest first."""
    return JournalReader(path).poll()


# -- validation --------------------------------------------------------------

_BASE_FIELDS = frozenset({"v", "event", "fp", "seed", "wall"})


def validate_events(events: Iterable[dict]) -> List[str]:
    """Schema-check parsed journal events; returns human-readable errors.

    Checks the version tag, event vocabulary, required/allowed field
    sets (the closed top-level schema is what confines nondeterministic
    data to the ``wall`` envelope), fingerprint consistency, and shard
    lifecycle sanity (completions/failures must follow a start).
    """
    errors: List[str] = []
    fingerprint: Optional[str] = None
    started_seeds: set = set()
    for number, event in enumerate(events, start=1):
        where = f"event {number}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        kind = event.get("event")
        if event.get("v") != JOURNAL_VERSION:
            errors.append(
                f"{where}: journal version {event.get('v')!r} != {JOURNAL_VERSION}"
            )
            continue
        if kind not in EVENT_SCHEMA:
            errors.append(f"{where}: unknown event type {kind!r}")
            continue
        if not isinstance(event.get("fp"), str) or not event["fp"]:
            errors.append(f"{where}: missing sweep fingerprint 'fp'")
        elif fingerprint is None:
            fingerprint = event["fp"]
        elif kind == SWEEP_STARTED:
            fingerprint = event["fp"]  # a resumed sweep re-keys the stream
        elif event["fp"] != fingerprint:
            errors.append(
                f"{where}: fingerprint {event['fp']!r} != sweep "
                f"fingerprint {fingerprint!r}"
            )
        wall = event.get("wall")
        if not isinstance(wall, dict) or "ts" not in wall:
            errors.append(f"{where}: missing non-deterministic envelope 'wall.ts'")
        required, optional = EVENT_SCHEMA[kind]
        missing = sorted(required - set(event))
        if missing:
            errors.append(f"{where}: {kind} missing field(s) {', '.join(missing)}")
        extra = sorted(set(event) - _BASE_FIELDS - required - optional)
        if extra:
            errors.append(
                f"{where}: {kind} carries undeclared top-level field(s) "
                f"{', '.join(extra)} — nondeterministic data belongs in 'wall'"
            )
        if kind.startswith("shard_") and not isinstance(event.get("seed"), int):
            errors.append(f"{where}: {kind} needs an integer 'seed'")
            continue
        if kind == SHARD_STARTED:
            started_seeds.add(event["seed"])
        elif kind in (SHARD_COMPLETED, SHARD_FAILED):
            if event["seed"] not in started_seeds:
                errors.append(
                    f"{where}: {kind} for seed {event['seed']} without "
                    f"a prior {SHARD_STARTED}"
                )
    return errors


def validate_journal(path: Union[str, Path]) -> List[str]:
    """Validate a journal file: parse errors plus schema errors."""
    path = Path(path)
    if not path.exists():
        return [f"journal not found: {path}"]
    errors: List[str] = []
    events: List[dict] = []
    text = path.read_bytes()
    lines = text.split(b"\n")
    torn = lines[-1] if lines and lines[-1].strip() else b""
    for number, raw in enumerate(lines, start=1):
        if not raw.strip():
            continue
        try:
            events.append(json.loads(raw.decode("utf-8")))
        except ValueError:
            if raw is torn:
                # A torn final line means a writer died mid-write;
                # tolerated by readers, but worth reporting.
                errors.append(f"line {number}: torn trailing line (no newline)")
            else:
                errors.append(f"line {number}: not valid JSON")
    errors.extend(validate_events(events))
    return errors


# -- canonical projection ----------------------------------------------------

_CANONICAL_RANK = {
    SHARD_SCHEDULED: 0,
    SHARD_STARTED: 1,
    SHARD_PROGRESS: 2,
    SHARD_COMPLETED: 3,
}


def _canonical_key(event: dict) -> Tuple[int, int, int, float]:
    phase = {SWEEP_STARTED: 0, SWEEP_COMPLETED: 2}.get(event["event"], 1)
    seed = event.get("seed", -1)
    rank = _CANONICAL_RANK.get(event["event"], 9)
    sim_time = float(event.get("sim_time", 0.0))
    return (phase, int(seed), rank, sim_time)


def canonical_events(events: Iterable[dict]) -> List[dict]:
    """The deterministic projection of a journal.

    Keeps :data:`CANONICAL_EVENTS` only, strips every ``wall``
    envelope, and orders by ``(phase, seed, lifecycle rank, sim
    time)`` — an order independent of worker interleaving, so two
    identical runs at any ``--jobs`` project to the same sequence.
    """
    kept = [
        {key: value for key, value in event.items() if key != "wall"}
        for event in events
        if isinstance(event, dict) and event.get("event") in CANONICAL_EVENTS
    ]
    kept.sort(key=_canonical_key)
    return kept


def canonical_journal(events: Iterable[dict]) -> str:
    """The canonical projection serialised byte-stably (one JSON/line)."""
    lines = [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in canonical_events(events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "JOURNAL_VERSION",
    "JOURNAL_NAME",
    "SWEEP_STARTED",
    "SWEEP_COMPLETED",
    "SWEEP_ABORTED",
    "SHARD_SCHEDULED",
    "SHARD_STARTED",
    "SHARD_HEARTBEAT",
    "SHARD_PROGRESS",
    "SHARD_COMPLETED",
    "SHARD_FAILED",
    "SHARD_STALLED",
    "SHARD_REQUEUED",
    "SHARD_CACHE_HIT",
    "EVENT_SCHEMA",
    "CANONICAL_EVENTS",
    "WATCHDOG_POLICIES",
    "SweepTelemetry",
    "ShardTelemetry",
    "JournalWriter",
    "JournalReader",
    "NullJournal",
    "NULL_JOURNAL",
    "read_journal",
    "validate_events",
    "validate_journal",
    "canonical_events",
    "canonical_journal",
    "peak_rss_kb",
]

"""Command-line interface.

Main subcommands::

    repro-bt run --hours 24 --seed 7 --out results/        # run + dump
    repro-bt sweep --seeds 8 --jobs 4 --out sweep/          # multi-seed pool
    repro-bt sweep --backend serial --cache-dir ~/.cache/bt # pluggable exec
    repro-bt sweep --rare-boost 8 --target-ci 0.1           # adaptive strata
    repro-bt top sweep/ --follow                            # live sweep status
    repro-bt analyze results/                               # re-analyze a dump
    repro-bt report --hours 24 --seed 7                     # full paper report
    repro-bt report sweep/ --check                          # journal post-mortem
    repro-bt obs --hours 8 --metrics-out m.txt              # instrumented run
    repro-bt cache info --cache-dir ~/.cache/bt             # shard cache admin
    repro-bt lint src                                       # determinism lint

Every campaign-executing subcommand routes through the unified
:mod:`repro.api` facade (``campaign`` is the legacy alias of ``run``,
kept for existing scripts).

``run`` runs the two testbeds and dumps the repository (JSONL) plus
every rendered table/figure into the output directory; ``analyze``
rebuilds the analyses from a previous dump without re-simulating;
``report`` runs baseline + masked campaigns and prints the whole
evaluation section to stdout; ``obs`` runs a fully instrumented campaign
and prints the observability summary (metrics, engine profile, fault
propagation paths); ``lint`` runs the determinism & sim-safety static
analysis (rules DET001-DET007, exits non-zero on findings — see
:mod:`repro.analysis`); ``sweep`` replicates one campaign over N
deterministically derived seeds on a process pool, checkpoints each
shard, writes the pooled mean/CI statistics table, and (by default)
narrates itself to a run journal watched by a stall watchdog — disable
with ``--no-journal``, tune with ``--heartbeat-interval`` /
``--stall-after`` / ``--stall-policy`` / ``--max-retries``.  ``sweep``
also takes ``--backend`` (serial / process pool / subprocess / SSH, all
byte-identical), ``--cache-dir`` (content-addressed shard reuse across
runs; ``cache info`` / ``cache prune`` administer the store),
``--rare-boost`` / ``--boost-seeds`` (an importance-sampled stratum
that tightens the rare failure classes without bias) and
``--target-ci`` (an adaptive stopping rule on the pooled 95% CIs).
``top``
renders a live (or final) single-screen status over that journal;
``report <dir>`` renders the post-mortem timeline and straggler table
from it (``--check`` validates the journal against the schema and exits
non-zero on violations).  ``campaign`` accepts ``--metrics-out`` /
``--trace-out`` to instrument a normal run; ``-v/-vv`` raises the
logging verbosity everywhere.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import api, configure_logging
from repro.collection.repository import CentralRepository
from repro.collection.store import FailureStore
from repro.core.dependability import build_dependability_report
from repro.core.distributions import packet_loss_by_connection_age
from repro.obs import Observability
from repro.recovery.masking import MaskingPolicy
from repro.reporting import (
    format_bar_chart,
    render_dependability_table,
    render_obs_summary,
)


def infer_node_nap_pairs(repository: FailureStore) -> List[Tuple[str, str]]:
    """Recover (PANU, NAP) pairs from a store's node inventory.

    The NAP of each testbed is the host that never writes user-level
    reports (it only records system-level data).  Works against any
    :class:`~repro.collection.store.FailureStore` backend; only the
    node-name set is held in memory.
    """
    nodes = repository.nodes()
    test_nodes = {r.node for r in repository.iter_records(kind="test")}
    naps: Dict[str, str] = {}
    for node in nodes:
        testbed = node.split(":", 1)[0]
        if node not in test_nodes and testbed not in naps:
            naps[testbed] = node
    pairs = []
    for node in nodes:
        testbed = node.split(":", 1)[0]
        if node in test_nodes and testbed in naps:
            pairs.append((node, naps[testbed]))
    return pairs


def _analyses_text(
    repository: FailureStore,
    pairs: List[Tuple[str, str]],
) -> str:
    """Render every analysis derivable from a failure store alone."""
    from repro.core.summary import summarize_repository

    summary = summarize_repository(repository, pairs)
    sections = [summary.render()]
    age = packet_loss_by_connection_age(repository.iter_records(kind="test"))
    if any(v for _, v in age):
        sections.append("")
        sections.append(format_bar_chart(age, title="Packet losses vs connection age"))
    return "\n".join(sections)


def _observability_for(args: argparse.Namespace) -> Optional[Observability]:
    """Build the Observability bundle a command's flags ask for."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)):
        return None
    return Observability()


def _export_obs(obs: Optional[Observability], args: argparse.Namespace) -> None:
    """Write the --metrics-out / --trace-out artifacts, if requested."""
    if obs is None:
        return
    if getattr(args, "metrics_out", None):
        obs.write_metrics(args.metrics_out)
        print(f"Prometheus metrics written to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        obs.write_trace(args.trace_out)
        print(f"Propagation trace written to {args.trace_out}")


def _reject_batch_observability(args: argparse.Namespace) -> Optional[str]:
    """The error message when batch fidelity meets per-packet flags."""
    if getattr(args, "fidelity", "bit") != "batch":
        return None
    offending = [
        flag
        for attr, flag in (
            ("metrics_out", "--metrics-out"),
            ("trace_out", "--trace-out"),
        )
        if getattr(args, attr, None)
    ]
    if not offending:
        return None
    return (
        f"--fidelity batch does not support {'/'.join(offending)}: "
        "per-packet instrumentation needs the bit-accurate engine "
        "(drop the flag or use --fidelity bit)"
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a campaign, dump repository + analysis to --out."""
    error = _reject_batch_observability(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    masking = MaskingPolicy.all_on() if args.masking else MaskingPolicy.all_off()
    obs = _observability_for(args)
    result = api.run(
        duration=args.hours * 3600.0,
        seed=args.seed,
        masking=masking,
        fidelity=args.fidelity,
        observability=obs,
        store=args.store,
    )
    out = Path(args.out)
    result.repository.flush(out)
    text = _analyses_text(result.repository, result.node_nap_pairs())
    (out / "analysis.txt").write_text(text + "\n", encoding="utf-8")
    print(text)
    _export_obs(obs, args)
    print(f"\nRepository and analysis written to {out}/")
    if result.store_path is not None:
        print(f"Columnar failure store written to {result.store_path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a deterministic multi-seed sweep across a pluggable backend."""
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    error = _reject_batch_observability(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    backend = args.backend
    if backend is not None:
        from repro.parallel.backends import resolve_backend

        try:
            backend = resolve_backend(backend)
        except ValueError as bad:
            print(bad, file=sys.stderr)
            return 2
    try:
        if args.rare_boost < 1.0:
            raise ValueError("--rare-boost must be >= 1")
        if args.boost_seeds < 0:
            raise ValueError("--boost-seeds must be >= 0")
        if args.boost_seeds and args.rare_boost == 1.0:
            raise ValueError("--boost-seeds needs --rare-boost > 1")
        if args.target_ci is not None and args.target_ci <= 0:
            raise ValueError("--target-ci must be > 0")
        if args.target_ci is not None and args.max_seeds < max(args.seeds, 2):
            raise ValueError("--max-seeds must be >= max(--seeds, 2)")
    except ValueError as bad:
        print(bad, file=sys.stderr)
        return 2
    masking = MaskingPolicy.all_on() if args.masking else MaskingPolicy.all_off()
    out = Path(args.out)

    def progress(shard, reused: bool) -> None:
        verb = "reused" if reused else "finished"
        print(
            f"  shard seed {shard.seed}: {verb} "
            f"({shard.total_items} items, {shard.wall_time:.1f} s)"
        )

    telemetry = None
    if not args.no_journal:
        from repro.obs.journal import JOURNAL_NAME, SweepTelemetry

        telemetry = SweepTelemetry(
            journal=out / JOURNAL_NAME,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_deadline=args.stall_after,
            policy=args.stall_policy,
            max_retries=args.max_retries,
            openmetrics_out=args.openmetrics_out,
        )
    print(
        f"Sweeping {args.seeds} seeds x {args.hours:.0f} h "
        f"(root seed {args.seed}, {args.jobs} job(s))..."
    )
    result = api.sweep(
        args.seeds,
        jobs=args.jobs,
        checkpoint_dir=out / "shards",
        with_metrics=args.metrics_out is not None,
        progress=progress,
        telemetry=telemetry,
        backend=backend,
        cache_dir=args.cache_dir,
        rare_boost=args.rare_boost,
        boost_seeds=args.boost_seeds,
        target_ci=args.target_ci,
        max_seeds=args.max_seeds,
        duration=args.hours * 3600.0,
        seed=args.seed,
        masking=masking,
        fidelity=args.fidelity,
        store=args.store,
    )
    text = result.render()
    (out / "sweep.txt").write_text(text + "\n", encoding="utf-8")
    if args.store is None:
        # Legacy JSONL materialisation: forces the full merge in memory.
        result.repository.flush(out / "repository")
    else:
        print(f"Columnar failure store written to {result.store_path}")
    if args.metrics_out:
        from repro.obs import render_prometheus

        Path(args.metrics_out).write_text(
            render_prometheus(result.metrics), encoding="utf-8"
        )
        print(f"Merged Prometheus metrics written to {args.metrics_out}")
    print()
    print(text)
    print(
        f"\n{len(result.shards)} shard(s) ({result.reused} reused, "
        f"{result.cached} from cache) on backend '{result.backend}' in "
        f"{result.wall_time:.1f} s; sweep table, shard checkpoints and "
        f"merged repository written to {out}/"
    )
    if result.target_ci is not None:
        verdict = "converged" if result.converged else "NOT converged"
        print(
            f"Adaptive stop: {verdict} at {len(result.shards)} seed(s) "
            f"(target 95% CI width {result.target_ci:g})"
        )
    if result.journal is not None:
        print(
            f"Run journal: {result.journal} "
            f"(inspect with 'repro-bt top {out}' or "
            f"'repro-bt report {out}')"
        )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Administer the content-addressed shard cache (info / prune)."""
    from repro.parallel.cache import CACHE_ENV, ShardCache

    root = args.cache_dir or os.environ.get(CACHE_ENV)
    if not root:
        print(
            f"no cache directory: pass --cache-dir or set ${CACHE_ENV}",
            file=sys.stderr,
        )
        return 2
    cache = ShardCache(root)
    if args.action == "info":
        stats = cache.stats()
        print(f"Shard cache at {cache.root}")
        print(f"  entries: {stats.entries}")
        print(f"  size:    {stats.total_bytes} bytes")
        return 0
    # prune
    if args.max_bytes is None or args.max_bytes < 0:
        print("prune needs --max-bytes >= 0", file=sys.stderr)
        return 2
    report = cache.prune(args.max_bytes)
    print(
        f"pruned {report['dropped']} entr{'y' if report['dropped'] == 1 else 'ies'} "
        f"({report['freed_bytes']} bytes freed, "
        f"{report['kept_bytes']} bytes kept)"
    )
    return 0


def _journal_path(target: str) -> Path:
    """Resolve a journal target: a journal file or a sweep directory."""
    from repro.obs.journal import JOURNAL_NAME

    path = Path(target)
    if path.is_dir():
        return path / JOURNAL_NAME
    return path


def cmd_top(args: argparse.Namespace) -> int:
    """Render the live single-screen sweep status over a run journal."""
    from repro.obs.campaign import SweepMonitor, render_top
    from repro.obs.journal import JournalReader

    path = _journal_path(args.target)
    if not path.exists():
        print(f"no run journal at {path}", file=sys.stderr)
        return 1
    reader = JournalReader(path)
    monitor = SweepMonitor()
    while True:
        monitor.feed(reader.poll())
        text = render_top(monitor, time.time(), deadline=args.stall_after)
        if not args.follow:
            print(text)
            return 0
        # Home the cursor and clear below: a flicker-free live screen.
        print(f"\x1b[H\x1b[J{text}", flush=True)
        if monitor.finished:
            return 0
        time.sleep(args.interval)


def _journal_report(args: argparse.Namespace) -> int:
    """The journal branch of ``report``: post-mortem or --check."""
    from repro.obs.campaign import render_report
    from repro.obs.journal import JOURNAL_VERSION, read_journal, validate_journal

    path = _journal_path(args.target)
    errors = validate_journal(path)
    if args.check:
        if errors:
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            print(f"journal FAILED validation: {path}", file=sys.stderr)
            return 1
        events = read_journal(path)
        print(
            f"journal OK: {path} ({len(events)} event(s), "
            f"schema v{JOURNAL_VERSION})"
        )
        return 0
    if not path.exists():
        print(f"no run journal at {path}", file=sys.stderr)
        return 1
    print(render_report(read_journal(path)))
    if errors:
        print(
            f"\nwarning: {len(errors)} schema violation(s); "
            f"run 'repro-bt report {args.target} --check' for details",
            file=sys.stderr,
        )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Run a fully instrumented campaign and print the obs summary."""
    obs = Observability()
    api.run(duration=args.hours * 3600.0, seed=args.seed, observability=obs)
    print(render_obs_summary(obs))
    _export_obs(obs, args)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism static analysis; exit 1 on findings."""
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _open_failure_store(target: str) -> FailureStore:
    """Open either persisted backend: a JSONL directory or a SQLite file."""
    path = Path(target)
    if path.is_file():
        from repro.collection.store import SQLiteStore

        return SQLiteStore.open(path)
    return CentralRepository.open(path)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-analyze a previously persisted repository or columnar store."""
    from repro.collection.store import StoreError

    try:
        repository = _open_failure_store(args.directory)
    except StoreError as bad:
        print(f"{args.directory}: {bad}", file=sys.stderr)
        return 1
    if repository.total_items == 0:
        print(f"no records found under {args.directory}", file=sys.stderr)
        return 1
    pairs = infer_node_nap_pairs(repository)
    print(_analyses_text(repository, pairs))
    repository.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Query a columnar failure store: records, counters, tables, pairs."""
    import json

    from repro.collection.store import StoreError

    path = Path(args.store)
    if not path.exists():
        print(f"no failure store at {path}", file=sys.stderr)
        return 2
    try:
        store = _open_failure_store(args.store)
    except StoreError as bad:
        print(f"{path}: {bad}", file=sys.stderr)
        return 2
    try:
        if args.summary:
            for key, value in sorted(store.summary().items()):
                print(f"{key}: {value}")
            return 0
        if args.tables:
            pairs = infer_node_nap_pairs(store)
            print(_analyses_text(store, pairs))
            return 0
        if args.relationships:
            from repro.core.relationship import build_relationship_table
            from repro.reporting import render_relationship_table

            pairs = infer_node_nap_pairs(store)
            table = build_relationship_table(store, pairs)
            print(render_relationship_table(table))
            lines = []
            for user_type in sorted(table.observed, key=lambda u: u.name):
                cause = table.strongest_cause(user_type)
                if cause is None:
                    continue
                pct = table.row_percentages(user_type).get(cause, 0.0)
                lines.append(f"  {user_type.value} <- {cause} ({pct:.1f}% of evidence)")
            if lines:
                print("\nStrongest error->failure pairs:")
                print("\n".join(lines))
            return 0
        if args.kind != "test" and args.sira is not None:
            print("--sira filters user-level (test) records only", file=sys.stderr)
            return 2
        severity_of = None
        if args.sira is not None:
            from repro.core.sira_analysis import record_severity

            severity_of = record_severity
        shown = 0
        for record in store.iter_records(
            kind=args.kind,
            node=args.node,
            testbed=args.testbed,
            start=args.start,
            end=args.end,
        ):
            if severity_of is not None and severity_of(record) != args.sira:
                continue
            print(json.dumps(record.to_dict(), sort_keys=True))
            shown += 1
            if args.limit is not None and shown >= args.limit:
                break
        print(f"{shown} record(s)", file=sys.stderr)
        return 0
    finally:
        store.close()


def cmd_report(args: argparse.Namespace) -> int:
    """Full paper report — or, given a sweep dir, the journal post-mortem."""
    if args.target is not None:
        return _journal_report(args)
    if args.check:
        print("--check needs a journal target", file=sys.stderr)
        return 2
    print(f"Baseline campaign ({args.hours:.0f} h, seed {args.seed})...")
    baseline = api.run(duration=args.hours * 3600.0, seed=args.seed)
    print(f"Masked campaign   ({args.hours:.0f} h, seed {args.seed + 1})...")
    masked = api.run(
        duration=args.hours * 3600.0,
        seed=args.seed + 1,
        masking=MaskingPolicy.all_on(),
    )
    print()
    print(_analyses_text(baseline.repository, baseline.node_nap_pairs()))
    report = build_dependability_report(
        baseline.unmasked_failures(),
        masked.unmasked_failures(),
        masked.masked_count(),
    )
    print()
    print(render_dependability_table(report))
    print(
        f"\nAvailability improvement vs reboot-only: "
        f"{report.availability_improvement_vs_reboot:.1f}% | "
        f"reliability improvement: {report.reliability_improvement:.0f}%"
    )
    return 0


def cmd_scorecard(args: argparse.Namespace) -> int:
    """Grade the paper's claims; exit 1 when the pass rate drops."""
    from repro.core.scorecard import evaluate

    print(f"Baseline campaign ({args.hours:.0f} h, seed {args.seed})...")
    baseline = api.run(duration=args.hours * 3600.0, seed=args.seed)
    print(f"Masked campaign   ({args.hours:.0f} h, seed {args.seed + 1})...")
    masked = api.run(
        duration=args.hours * 3600.0,
        seed=args.seed + 1,
        masking=MaskingPolicy.all_on(),
    )
    scorecard = evaluate(baseline, masked)
    print()
    print(scorecard.render())
    return 0 if scorecard.pass_rate >= 0.9 else 1


def build_parser() -> argparse.ArgumentParser:
    """The repro-bt argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bt",
        description="Bluetooth PAN failure-data campaigns and analyses "
        "(reproduction of Cinque et al., DSN 2006).",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise logging verbosity (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_help = "run one campaign through repro.api and dump it"
    for name, help_text in (
        ("run", run_help),
        ("campaign", run_help + " (legacy alias of 'run')"),
    ):
        campaign = sub.add_parser(name, help=help_text)
        campaign.add_argument("--hours", type=float, default=24.0)
        campaign.add_argument("--seed", type=int, default=0)
        campaign.add_argument("--masking", action="store_true",
                              help="enable the three masking strategies")
        campaign.add_argument("--out", default="campaign_out")
        campaign.add_argument("--fidelity", choices=("bit", "batch"),
                              default="bit",
                              help="execution mode: bit-accurate per-packet "
                                   "engine (default) or vectorised batch "
                                   "fast path (~10x faster, statistically "
                                   "equivalent, no per-packet flags)")
        campaign.add_argument("--metrics-out", default=None,
                              help="write Prometheus text exposition here")
        campaign.add_argument("--trace-out", default=None,
                              help="write the JSONL propagation trace here")
        campaign.add_argument("--store", default=None,
                              help="also spill the repository into a columnar "
                                   "SQLite failure store at this path "
                                   "(query it with 'repro-bt query')")
        campaign.set_defaults(func=cmd_campaign)

    sweep = sub.add_parser(
        "sweep", help="run a multi-seed sweep across a process pool"
    )
    sweep.add_argument("--hours", type=float, default=16.0)
    sweep.add_argument("--seed", type=int, default=0,
                       help="root seed the shard seeds derive from")
    sweep.add_argument("--seeds", type=int, default=4,
                       help="number of replicate campaigns to run")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial, same results)")
    sweep.add_argument("--masking", action="store_true",
                       help="enable the three masking strategies")
    sweep.add_argument("--fidelity", choices=("bit", "batch"), default="bit",
                       help="execution mode: bit-accurate per-packet engine "
                            "(default) or vectorised batch fast path")
    sweep.add_argument("--out", default="sweep_out",
                       help="output + checkpoint directory (re-run to resume)")
    sweep.add_argument("--metrics-out", default=None,
                       help="write the merged Prometheus exposition here")
    sweep.add_argument("--no-journal", action="store_true",
                       help="disable the run journal / watchdog telemetry")
    sweep.add_argument("--heartbeat-interval", type=float, default=2.0,
                       help="worker liveness ping cadence, wall seconds")
    sweep.add_argument("--stall-after", type=float, default=30.0,
                       help="flag a started shard stalled after this much "
                            "silence (wall seconds)")
    sweep.add_argument("--stall-policy", choices=("log", "requeue", "abort"),
                       default="log",
                       help="what the watchdog does about a stalled shard")
    sweep.add_argument("--max-retries", type=int, default=1,
                       help="extra attempts per shard under --stall-policy "
                            "requeue")
    sweep.add_argument("--openmetrics-out", default=None,
                       help="refresh an OpenMetrics textfile here while "
                            "the sweep runs")
    sweep.add_argument("--backend", default=None,
                       help="execution backend: 'process' (default), "
                            "'serial', 'subprocess', or 'ssh:host1,host2' — "
                            "all byte-identical")
    sweep.add_argument("--cache-dir", default=os.environ.get("REPRO_BT_CACHE"),
                       help="content-addressed shard cache root (default: "
                            "$REPRO_BT_CACHE); repeated/overlapping sweeps "
                            "reuse completed shards")
    sweep.add_argument("--rare-boost", type=float, default=1.0,
                       help="importance-sampling boost (> 1) for the rare "
                            "failure classes in a second seed stratum")
    sweep.add_argument("--boost-seeds", type=int, default=0,
                       help="boosted-stratum size (default: matches --seeds "
                            "when --rare-boost > 1)")
    sweep.add_argument("--target-ci", type=float, default=None,
                       help="grow the seed strata until every pooled "
                            "statistic's 95%% CI is under this relative "
                            "width (e.g. 0.1 = 10%%)")
    sweep.add_argument("--max-seeds", type=int, default=64,
                       help="seed budget for --target-ci growth")
    sweep.add_argument("--store", default=None,
                       help="spill every shard into a columnar SQLite "
                            "failure store at this path instead of "
                            "materialising the merged JSONL repository "
                            "(query it with 'repro-bt query')")
    sweep.set_defaults(func=cmd_sweep)

    cache = sub.add_parser(
        "cache", help="inspect or prune the content-addressed shard cache"
    )
    cache.add_argument("action", choices=("info", "prune"),
                       help="info: entry count and size; prune: drop "
                            "oldest entries down to --max-bytes")
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: $REPRO_BT_CACHE)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="size budget the store is pruned down to")
    cache.set_defaults(func=cmd_cache)

    top = sub.add_parser(
        "top", help="single-screen live status of a (running) sweep journal"
    )
    top.add_argument("target",
                     help="sweep output directory or journal.jsonl path")
    top.add_argument("--follow", action="store_true",
                     help="keep refreshing until the sweep finishes")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period with --follow, seconds")
    top.add_argument("--stall-after", type=float, default=30.0,
                     help="highlight shards silent past this many seconds")
    top.set_defaults(func=cmd_top)

    lint = sub.add_parser(
        "lint",
        help="determinism & sim-safety static analysis (DET001-DET007)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="re-analyze a persisted repository (JSONL dir or SQLite store)",
    )
    analyze.add_argument("directory",
                         help="JSONL repository directory or columnar "
                              "SQLite store file")
    analyze.set_defaults(func=cmd_analyze)

    query = sub.add_parser(
        "query",
        help="query a persisted failure store: records, counters, tables",
    )
    query.add_argument("store",
                       help="columnar SQLite store file (from --store) or "
                            "JSONL repository directory")
    query.add_argument("--kind", choices=("test", "system"), default="test",
                       help="record stream to list (default: test)")
    query.add_argument("--node", default=None,
                       help="only records from this node, e.g. random:panu-1")
    query.add_argument("--testbed", default=None,
                       help="only records from this testbed ('random' or "
                            "'realistic')")
    query.add_argument("--start", type=float, default=None,
                       help="window start, sim seconds (inclusive)")
    query.add_argument("--end", type=float, default=None,
                       help="window end, sim seconds (inclusive)")
    query.add_argument("--sira", type=int, default=None,
                       help="only user failures cleared by this SIRA level "
                            "(1-7); test records only")
    query.add_argument("--limit", type=int, default=None,
                       help="stop after this many records")
    query.add_argument("--summary", action="store_true",
                       help="print the headline counters instead of records")
    query.add_argument("--tables", action="store_true",
                       help="render the full Table 1-4 analysis text "
                            "(byte-identical to 'repro-bt analyze')")
    query.add_argument("--relationships", action="store_true",
                       help="render the mined error->failure relationship "
                            "pairs (Table 2) with the strongest cause per "
                            "failure class")
    query.set_defaults(func=cmd_query)

    report = sub.add_parser(
        "report",
        help="full paper-style report, or a sweep-journal post-mortem",
    )
    report.add_argument("target", nargs="?", default=None,
                        help="sweep output directory or journal.jsonl: "
                             "render its post-mortem instead of running "
                             "campaigns")
    report.add_argument("--hours", type=float, default=24.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--check", action="store_true",
                        help="validate the journal against the schema and "
                             "exit non-zero on violations (needs a target)")
    report.set_defaults(func=cmd_report)

    scorecard = sub.add_parser(
        "scorecard", help="grade the paper's claims against fresh campaigns"
    )
    scorecard.add_argument("--hours", type=float, default=16.0)
    scorecard.add_argument("--seed", type=int, default=77)
    scorecard.set_defaults(func=cmd_scorecard)

    obs = sub.add_parser(
        "obs", help="run an instrumented campaign and print the obs summary"
    )
    obs.add_argument("--hours", type=float, default=8.0)
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--metrics-out", default=None,
                     help="write Prometheus text exposition here")
    obs.add_argument("--trace-out", default=None,
                     help="write the JSONL propagation trace here")
    obs.set_defaults(func=cmd_obs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — the Unix
        # convention is to exit quietly, not dump a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface.

Three subcommands::

    repro-bt campaign --hours 24 --seed 7 --out results/   # run + dump
    repro-bt analyze results/                               # re-analyze a dump
    repro-bt report --hours 24 --seed 7                     # full paper report

``campaign`` runs the two testbeds and dumps the repository (JSONL) plus
every rendered table/figure into the output directory; ``analyze``
rebuilds the analyses from a previous dump without re-simulating;
``report`` runs baseline + masked campaigns and prints the whole
evaluation section to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.collection.repository import CentralRepository
from repro.core.campaign import CampaignResult, run_campaign
from repro.core.dependability import build_dependability_report
from repro.core.distributions import packet_loss_by_connection_age
from repro.recovery.masking import MaskingPolicy
from repro.reporting import format_bar_chart, render_dependability_table


def infer_node_nap_pairs(repository: CentralRepository) -> List[Tuple[str, str]]:
    """Recover (PANU, NAP) pairs from a repository's node inventory.

    The NAP of each testbed is the host that never writes user-level
    reports (it only records system-level data).
    """
    nodes = repository.nodes()
    test_nodes = {r.node for r in repository.test_records()}
    naps: Dict[str, str] = {}
    for node in nodes:
        testbed = node.split(":", 1)[0]
        if node not in test_nodes and testbed not in naps:
            naps[testbed] = node
    pairs = []
    for node in nodes:
        testbed = node.split(":", 1)[0]
        if node in test_nodes and testbed in naps:
            pairs.append((node, naps[testbed]))
    return pairs


def _analyses_text(
    repository: CentralRepository,
    pairs: List[Tuple[str, str]],
) -> str:
    """Render every analysis derivable from a repository alone."""
    from repro.core.summary import summarize_repository

    summary = summarize_repository(repository, pairs)
    sections = [summary.render()]
    records = [r for r in repository.test_records() if not r.masked]
    age = packet_loss_by_connection_age(records)
    if any(v for _, v in age):
        sections.append("")
        sections.append(format_bar_chart(age, title="Packet losses vs connection age"))
    return "\n".join(sections)


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a campaign, dump repository + analysis to --out."""
    masking = MaskingPolicy.all_on() if args.masking else MaskingPolicy.all_off()
    result = run_campaign(
        duration=args.hours * 3600.0, seed=args.seed, masking=masking
    )
    out = Path(args.out)
    result.repository.dump(out)
    text = _analyses_text(result.repository, result.node_nap_pairs())
    (out / "analysis.txt").write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"\nRepository and analysis written to {out}/")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-analyze a previously dumped repository."""
    repository = CentralRepository.load(args.directory)
    if repository.total_items == 0:
        print(f"no records found under {args.directory}", file=sys.stderr)
        return 1
    pairs = infer_node_nap_pairs(repository)
    print(_analyses_text(repository, pairs))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run baseline + masked campaigns and print the full report."""
    print(f"Baseline campaign ({args.hours:.0f} h, seed {args.seed})...")
    baseline = run_campaign(duration=args.hours * 3600.0, seed=args.seed)
    print(f"Masked campaign   ({args.hours:.0f} h, seed {args.seed + 1})...")
    masked = run_campaign(
        duration=args.hours * 3600.0,
        seed=args.seed + 1,
        masking=MaskingPolicy.all_on(),
    )
    print()
    print(_analyses_text(baseline.repository, baseline.node_nap_pairs()))
    report = build_dependability_report(
        baseline.unmasked_failures(),
        masked.unmasked_failures(),
        masked.masked_count(),
    )
    print()
    print(render_dependability_table(report))
    print(
        f"\nAvailability improvement vs reboot-only: "
        f"{report.availability_improvement_vs_reboot:.1f}% | "
        f"reliability improvement: {report.reliability_improvement:.0f}%"
    )
    return 0


def cmd_scorecard(args: argparse.Namespace) -> int:
    """Grade the paper's claims; exit 1 when the pass rate drops."""
    from repro.core.scorecard import evaluate

    print(f"Baseline campaign ({args.hours:.0f} h, seed {args.seed})...")
    baseline = run_campaign(duration=args.hours * 3600.0, seed=args.seed)
    print(f"Masked campaign   ({args.hours:.0f} h, seed {args.seed + 1})...")
    masked = run_campaign(
        duration=args.hours * 3600.0,
        seed=args.seed + 1,
        masking=MaskingPolicy.all_on(),
    )
    scorecard = evaluate(baseline, masked)
    print()
    print(scorecard.render())
    return 0 if scorecard.pass_rate >= 0.9 else 1


def build_parser() -> argparse.ArgumentParser:
    """The repro-bt argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bt",
        description="Bluetooth PAN failure-data campaigns and analyses "
        "(reproduction of Cinque et al., DSN 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a campaign and dump it")
    campaign.add_argument("--hours", type=float, default=24.0)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--masking", action="store_true",
                          help="enable the three masking strategies")
    campaign.add_argument("--out", default="campaign_out")
    campaign.set_defaults(func=cmd_campaign)

    analyze = sub.add_parser("analyze", help="re-analyze a dumped repository")
    analyze.add_argument("directory")
    analyze.set_defaults(func=cmd_analyze)

    report = sub.add_parser("report", help="full paper-style report")
    report.add_argument("--hours", type=float, default=24.0)
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(func=cmd_report)

    scorecard = sub.add_parser(
        "scorecard", help="grade the paper's claims against fresh campaigns"
    )
    scorecard.add_argument("--hours", type=float, default=16.0)
    scorecard.add_argument("--seed", type=int, default=77)
    scorecard.set_defaults(func=cmd_scorecard)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

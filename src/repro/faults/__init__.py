"""Fault models, calibration and injection."""

from .calibration import DamageScope, Origin, validate
from .injector import (
    FaultActivation,
    FaultInjector,
    InjectorTuning,
    NodeTraits,
    TransferHazards,
)
from .evidence import emit_evidence

__all__ = [
    "DamageScope",
    "Origin",
    "validate",
    "FaultActivation",
    "FaultInjector",
    "NodeTraits",
    "TransferHazards",
    "InjectorTuning",
    "emit_evidence",
]

"""Turning fault activations into system-log entries.

When a fault activates, its system-level evidence does not appear as a
single tidy line: different daemons notice at different times (an HCI
command timeout fires after its timer, the HAL daemon gives up minutes
later), and some repeat themselves.  The emitter reproduces that
texture: each evidence item is logged after a random latency, and may be
followed by a repeat.  The spread of these latencies (seconds to a few
minutes) is what creates the coalescence-window "knee" the paper tunes
to 330 s in figure 2.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.collection.logs import SystemLog
from repro.obs.instruments import stack_instruments
from repro.obs.trace import get_tracer
from repro.sim import Simulator
from .calibration import Origin
from .injector import FaultActivation

#: Hard cap on evidence latency, keeping related entries inside a
#: coalescence window of a few hundred seconds.
MAX_EVIDENCE_DELAY = 280.0
#: Probability that a component logs its error line twice.
REPEAT_PROBABILITY = 0.35
#: Log-normal latency parameters: median ~15 s, long tail to minutes.
LATENCY_MU = 2.7
LATENCY_SIGMA = 1.0


def emit_evidence(
    sim: Simulator,
    activation: FaultActivation,
    local_log: SystemLog,
    nap_log: Optional[SystemLog],
    rng: random.Random,
    peer_name: Optional[str] = None,
) -> int:
    """Schedule the system-log entries for ``activation``.

    Returns the number of entries scheduled.  The first evidence item is
    logged near-immediately (it is the error that triggered the
    manifestation); later items trail behind with log-normal latencies.
    Entries written to the *NAP's* log carry the PANU's identity as a
    peer tag (``peer_name``), as the NAP daemons would log the
    requester's BD_ADDR.
    """
    scheduled = 0
    for index, (failure_type, variant, origin) in enumerate(activation.evidence):
        if origin is Origin.NONE:
            continue
        if origin is Origin.LOCAL:
            log, peer = local_log, None
        else:
            log, peer = nap_log, peer_name
        if log is None:
            continue
        if index == 0:
            delay = rng.uniform(0.0, 2.0)
        else:
            delay = min(MAX_EVIDENCE_DELAY, rng.lognormvariate(LATENCY_MU, LATENCY_SIGMA))
        trace_id = activation.trace_id
        scheduled += _schedule_entry(sim, log, failure_type, variant, delay, peer, trace_id)
        if rng.random() < REPEAT_PROBABILITY:
            repeat_delay = delay + rng.uniform(6.0, 60.0)
            if repeat_delay <= MAX_EVIDENCE_DELAY:
                scheduled += _schedule_entry(
                    sim, log, failure_type, variant, repeat_delay, peer, trace_id
                )
    return scheduled


def _schedule_entry(
    sim, log, failure_type, variant, delay: float, peer=None, trace_id: int = 0
) -> int:
    def write() -> None:
        log.set_time(sim.now)
        log.error(failure_type, variant, peer=peer)
        origin = "nap" if peer is not None else "local"
        stack_instruments().fault_evidence.labels(origin=origin).inc()
        tracer = get_tracer()
        if tracer.enabled and trace_id:
            tracer.event(
                trace_id,
                layer=failure_type.name.lower(),
                what=variant,
                origin=origin,
            )

    sim.schedule(delay, write)
    return 1


__all__ = ["emit_evidence", "MAX_EVIDENCE_DELAY", "REPEAT_PROBABILITY"]

"""The fault injector.

Decides, per stack operation, whether the operation fails, with which
user-level manifestation, which underlying cause (system-level
evidence), and how deep the damage reaches (which recovery action will
eventually clear it).  Rates and conditional structures come from
:mod:`repro.faults.calibration`; conditioning on the node profile
(PDAs use BCSP, only some hosts are bind-prone, ...) and on the piconet
state (busy devices time out HCI commands) is applied here.

The injector *never writes logs itself* — it returns a
:class:`FaultActivation` that the raising stack layer turns into log
entries and a typed exception.  This keeps the generative path shaped
like a real system: components fail, components log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.failure_model import SystemFailureType, UserFailureType
from repro.obs.instruments import stack_instruments
from repro.obs.trace import get_tracer
from repro.sim.distributions import weighted_choice
from . import calibration as cal
from .calibration import Evidence


@dataclass(frozen=True)
class NodeTraits:
    """The fault-relevant traits of one host."""

    name: str
    uses_bcsp: bool = False  # PDAs: BlueCore Serial Protocol transport
    uses_usb: bool = False  # PCs: USB dongle transport
    bind_prone: bool = False  # HAL/hotplug race present (Azzurro, Win)
    is_nap: bool = False


@dataclass(frozen=True)
class FaultActivation:
    """One activated fault, ready to be manifested by a stack layer."""

    user_failure: UserFailureType
    scope: int  # DamageScope value (1..7); 0 = not recoverable/no recovery
    evidence: List[Evidence] = field(default_factory=list)
    detail: str = ""
    #: Id of the propagation-trace span opened for this activation
    #: (0 = not traced); stack layers append their events to it.
    trace_id: int = 0


@dataclass(frozen=True)
class TransferHazards:
    """Per-baseband-packet hazards for one data-transfer phase."""

    break_hazard: float  # injected broken-link probability per packet
    mismatch_hazard: float  # undetected-corruption probability per packet
    latent_defect: bool  # this connection carries a setup defect
    latent_multiplier: float
    latent_packets: float


@dataclass(frozen=True)
class InjectorTuning:
    """Stack tuning knobs derived from the paper's findings.

    ``sw_role_timeout_factor`` scales the switch-role API timeout: the
    paper observes that 91.1 % of switch-role-request failures are HCI
    command-transmission timeouts and "suggests that increasing the
    timeout in the API helps to reduce the switch role request failure
    occurrence".  A factor of f keeps only 1/f of the timeout-caused
    share.

    ``rare_boost`` / ``boosted`` implement rare-event importance
    sampling: the per-operation activation probability of every failure
    type in ``boosted`` is multiplied by ``rare_boost`` (capped at 1).
    A boosted campaign samples the rare failure classes ``rare_boost``
    times more often; the estimator side
    (:func:`repro.core.summary.importance_estimates`) reweights each
    boosted occurrence by ``1 / rare_boost`` — the per-trial likelihood
    ratio — so expected-count estimates stay unbiased.
    """

    sw_role_timeout_factor: float = 1.0
    #: Importance-sampling rate multiplier for the ``boosted`` classes.
    rare_boost: float = 1.0
    #: Failure types whose activation probability is boosted.
    boosted: Tuple[UserFailureType, ...] = ()

    #: Share of switch-role-request failures that are timeout-caused
    #: (the paper's 91.1 %).
    TIMEOUT_CAUSED_SHARE = 0.911

    def sw_role_request_multiplier(self) -> float:
        """Rate multiplier the tuned timeout applies to the failure."""
        if self.sw_role_timeout_factor < 1.0:
            raise ValueError("timeout factor must be >= 1")
        f = self.sw_role_timeout_factor
        share = self.TIMEOUT_CAUSED_SHARE
        return (1.0 - share) + share / f


#: Mean multiplier applied to the busy-device boost of connect failures.
BUSY_CONNECT_MULTIPLIER = 1.5
#: Boost applied to BCSP evidence weight on BCSP hosts (see calibration).
PDA_BCSP_EVIDENCE_BOOST = 3.0


class FaultInjector:
    """Samples fault activations for one testbed."""

    def __init__(
        self, rng: random.Random, tuning: Optional[InjectorTuning] = None
    ) -> None:
        self._rng = rng
        self._op_probabilities = _derive_operation_probabilities()
        self.tuning = tuning or InjectorTuning()
        # Conditioned per-operation probabilities are deterministic in
        # (operation, node, busy, sdp_performed, tuning); memoised here
        # because the conditioning runs once per stack operation on the
        # campaign hot path.  The RNG draw sequence is unchanged: one
        # uniform draw per candidate failure, in candidate order.  Keys
        # use the node *name* (unique per testbed, and str hashes are
        # cached by the interpreter); a tuning swap clears the cache.
        self._conditioned: Dict[tuple, Tuple[Tuple[UserFailureType, float], ...]] = {}
        self._conditioned_tuning = self.tuning
        # Cause-evidence weights are deterministic in (failure, node
        # traits); memoised for the same hot-path reason.  Draw order is
        # unchanged: zero or one uniform per sample_cause call.
        self._cause_weights: Dict[tuple, Optional[List[float]]] = {}

    # -- operation faults ---------------------------------------------------

    def draw_operation_fault(
        self,
        operation: str,
        node: NodeTraits,
        busy: bool = False,
        sdp_performed: bool = True,
    ) -> Optional[FaultActivation]:
        """Decide whether ``operation`` fails on ``node`` right now.

        ``operation`` is one of: ``inquiry``, ``sdp_search``,
        ``l2cap_connect``, ``pan_connect``, ``bind``,
        ``sw_role_request``, ``sw_role_command``.
        """
        if self.tuning is not self._conditioned_tuning:
            self._conditioned.clear()
            self._conditioned_tuning = self.tuning
        key = (operation, node.name, busy, sdp_performed)
        conditioned = self._conditioned.get(key)
        if conditioned is None:
            candidates = self._op_probabilities.get(operation)
            if not candidates:
                raise ValueError(f"unknown operation: {operation}")
            conditioned = tuple(
                (
                    failure,
                    self._condition_probability(
                        failure, base_p, node, busy=busy, sdp_performed=sdp_performed
                    ),
                )
                for failure, base_p in candidates
            )
            self._conditioned[key] = conditioned
        rng_random = self._rng.random
        for failure, p in conditioned:
            if p > 0 and rng_random() < p:
                return self.activate(failure, node)
        return None

    def _condition_probability(
        self,
        failure: UserFailureType,
        base_p: float,
        node: NodeTraits,
        busy: bool,
        sdp_performed: bool,
    ) -> float:
        p = base_p
        if failure is UserFailureType.CONNECT_FAILED and busy:
            p *= BUSY_CONNECT_MULTIPLIER
        if failure is UserFailureType.SW_ROLE_REQUEST_FAILED:
            p *= self.tuning.sw_role_request_multiplier()
        if failure is UserFailureType.BIND_FAILED:
            # The TC/TH race only bites hosts with the HAL/hotplug issue.
            p = p * 3.0 if node.bind_prone else 0.0
        if failure is UserFailureType.SW_ROLE_COMMAND_FAILED:
            # PDAs fail the switch-role command far more often (BCSP);
            # dividing by the fleet-average multiplier keeps the
            # network-wide rate at its calibrated target with 2 of the
            # 6 PANUs being PDAs.
            avg = (4.0 + 2.0 * cal.PDA_SW_ROLE_CMD_MULTIPLIER) / 6.0
            multiplier = cal.PDA_SW_ROLE_CMD_MULTIPLIER if node.uses_bcsp else 1.0
            p *= multiplier / avg
        if failure is UserFailureType.PAN_CONNECT_FAILED:
            # 96.5 % of PAN-connect failures happen with a stale (cached)
            # SDP record, i.e. when the SDP search was skipped.
            frac = cal.PAN_CONNECT_NO_SDP_FRACTION
            if sdp_performed:
                p *= 2.0 * (1.0 - frac)
            else:
                p *= 2.0 * frac
        # Importance-sampling tilt, applied last so the boost multiplies
        # the fully conditioned probability (the likelihood ratio of an
        # activation is then exactly 1/rare_boost while boosted p < 1).
        if self.tuning.rare_boost != 1.0 and failure in self.tuning.boosted:
            p *= self.tuning.rare_boost
        return min(p, 1.0)

    # -- activation assembly ------------------------------------------------

    def activate(
        self, failure: UserFailureType, node: NodeTraits, detail: str = ""
    ) -> FaultActivation:
        """Build a full activation: cause evidence plus damage scope.

        When observability is on, the activation is counted by type and
        a propagation-trace span is opened; the layers the error crosses
        append their events to it until the workload classifies the
        resulting user-level failure.
        """
        stack_instruments().inject(failure)
        tracer = get_tracer()
        trace_id = 0
        if tracer.enabled:
            name = failure.name.lower()
            trace_id = tracer.start_span(
                f"fault:{name}", failure=name, node=node.name, detail=detail
            )
            tracer.event(trace_id, layer="faults", what="activated")
        return FaultActivation(
            user_failure=failure,
            scope=self.sample_scope(failure),
            evidence=self.sample_cause(failure, node),
            detail=detail,
            trace_id=trace_id,
        )

    def sample_cause(
        self, failure: UserFailureType, node: NodeTraits
    ) -> List[Evidence]:
        """Sample the system-level evidence for one failure on ``node``."""
        key = (failure, node.name)
        causes = cal.CAUSE_WEIGHTS[failure]
        try:
            weights = self._cause_weights[key]
        except KeyError:
            computed = []
            for weight, evidence in causes:
                adjusted = weight
                if _mentions(evidence, SystemFailureType.BCSP):
                    adjusted = (
                        weight * PDA_BCSP_EVIDENCE_BOOST if node.uses_bcsp else 0.0
                    )
                elif _mentions(evidence, SystemFailureType.USB) and not node.uses_usb:
                    adjusted = 0.0
                elif _mentions(evidence, SystemFailureType.HOTPLUG) and not node.bind_prone:
                    # The hotplug race exists everywhere but is only slow
                    # enough to be observed on the bind-prone hosts.
                    adjusted = weight * 0.25
                computed.append(adjusted)
            weights = computed if sum(computed) > 0 else None
            self._cause_weights[key] = weights
        if weights is None:
            return []
        _, evidence = weighted_choice(self._rng, causes, weights)
        return list(evidence)

    def sample_scope(self, failure: UserFailureType) -> int:
        """Sample the damage depth (1..7); 0 when no recovery is defined."""
        row = cal.SCOPE_WEIGHTS[failure]
        if not row:
            return 0
        scope = weighted_choice(self._rng, _SCOPE_LEVELS, row)
        return int(scope)

    # -- data-transfer hazards ------------------------------------------------

    def transfer_hazards(self, node: NodeTraits, application: str) -> TransferHazards:
        """Hazards for one data-transfer phase of ``application``."""
        multiplier = cal.APPLICATION_HAZARD_MULTIPLIERS.get(application, 1.0)
        return TransferHazards(
            break_hazard=cal.LINK_BREAK_HAZARD * multiplier,
            mismatch_hazard=cal.MISMATCH_HAZARD,
            latent_defect=self._rng.random() < cal.LATENT_DEFECT_PROBABILITY,
            latent_multiplier=cal.LATENT_HAZARD_MULTIPLIER,
            latent_packets=cal.LATENT_DEFECT_PACKETS,
        )


#: Damage-depth levels of sample_scope (allocated once, hot path).
_SCOPE_LEVELS: Tuple[int, ...] = tuple(range(1, 8))


def _mentions(evidence: List[Evidence], failure_type: SystemFailureType) -> bool:
    return any(item[0] is failure_type for item in evidence)


def _derive_operation_probabilities() -> Dict[str, List[Tuple[UserFailureType, float]]]:
    """Turn target failure shares into per-operation base probabilities.

    The reference cycle (random workload) performs: inquiry with
    probability 0.5, SDP search with probability 0.5, one L2CAP + PAN
    connect + role switch, a bind, and one data-transfer phase.  The
    transfer-phase types (packet loss, data mismatch) are driven by
    per-packet hazards instead and are excluded here.
    """
    f = cal.FAILURES_PER_CYCLE
    shares = cal.normalized_shares()

    def per_op(failure: UserFailureType, op_frequency: float) -> float:
        return f * shares[failure] / op_frequency

    return {
        "inquiry": [
            (
                UserFailureType.INQUIRY_SCAN_FAILED,
                per_op(UserFailureType.INQUIRY_SCAN_FAILED, cal.SCAN_FLAG_PROBABILITY),
            )
        ],
        "sdp_search": [
            (
                UserFailureType.SDP_SEARCH_FAILED,
                per_op(UserFailureType.SDP_SEARCH_FAILED, cal.SDP_FLAG_PROBABILITY),
            ),
            (
                UserFailureType.NAP_NOT_FOUND,
                per_op(UserFailureType.NAP_NOT_FOUND, cal.SDP_FLAG_PROBABILITY),
            ),
        ],
        "l2cap_connect": [
            (UserFailureType.CONNECT_FAILED, per_op(UserFailureType.CONNECT_FAILED, 1.0))
        ],
        "pan_connect": [
            (
                UserFailureType.PAN_CONNECT_FAILED,
                per_op(UserFailureType.PAN_CONNECT_FAILED, 1.0),
            )
        ],
        "bind": [
            (UserFailureType.BIND_FAILED, per_op(UserFailureType.BIND_FAILED, 1.0))
        ],
        "sw_role_request": [
            (
                UserFailureType.SW_ROLE_REQUEST_FAILED,
                per_op(UserFailureType.SW_ROLE_REQUEST_FAILED, 1.0),
            )
        ],
        "sw_role_command": [
            (
                UserFailureType.SW_ROLE_COMMAND_FAILED,
                per_op(UserFailureType.SW_ROLE_COMMAND_FAILED, 1.0),
            )
        ],
    }


__all__ = [
    "FaultInjector",
    "FaultActivation",
    "NodeTraits",
    "TransferHazards",
    "InjectorTuning",
    "BUSY_CONNECT_MULTIPLIER",
    "PDA_BCSP_EVIDENCE_BOOST",
]

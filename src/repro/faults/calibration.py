"""Calibration constants of the fault models.

The paper measured 18 months of organic faults; we inject faults whose
*relative rates, cause structure and damage depth* are calibrated so the
simulated campaign's marginals land near the paper's observed ones.
Three families of constants live here:

* ``USER_FAILURE_SHARES`` — the share each user-level failure type has
  of all user-level failures (the "TOT" column of Table 2).
* ``CAUSE_WEIGHTS`` — per user failure, the conditional distribution of
  the underlying cause, i.e. which system-level evidence is registered
  and where (local host vs NAP) — the body of Table 2.
* ``SCOPE_WEIGHTS`` — per user failure, the distribution of the damage
  depth, i.e. the minimal recovery action able to clear it — the body
  of Table 3.

Several cells of Tables 2 and 3 are garbled in the available copy of
the paper; cells marked reconstructed were filled to be consistent with
every readable fragment and with the narrative (e.g. the overall
58.4 % SIRA coverage, the 96.5 % SDP share of PAN-connect failures, the
49.7 % BCSP share of switch-role-command failures).  EXPERIMENTS.md
records which anchors are verbatim and which are reconstructed.

The analysis pipeline never reads this module: Tables 2/3 are
re-measured from the generated logs.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.core.failure_model import SystemFailureType, UserFailureType


class DamageScope(enum.IntEnum):
    """Minimal recovery level able to clear a fault's damage.

    Values match the paper's SIRA ordering (increasing cost).
    """

    IP_SOCKET = 1  # cleared by an IP socket reset
    CONNECTION = 2  # needs the BT connection re-established
    STACK = 3  # needs the BT stack state cleaned
    APPLICATION = 4  # needs the application restarted
    APPLICATION_DEEP = 5  # needs multiple application restarts
    SYSTEM = 6  # needs a system reboot
    SYSTEM_DEEP = 7  # needs multiple system reboots


class Origin(enum.Enum):
    """Which host registers the system-level evidence of a cause."""

    LOCAL = "local"
    NAP = "NAP"
    NONE = "none"  # no system-level evidence (e.g. firmware-internal)


#: Share (%) of each user-level failure type over all user failures
#: (Table 2, "TOT" column — the ten values sum to 100.0).
USER_FAILURE_SHARES: Dict[UserFailureType, float] = {
    UserFailureType.SW_ROLE_REQUEST_FAILED: 0.7,
    UserFailureType.PACKET_LOSS: 33.9,
    UserFailureType.DATA_MISMATCH: 0.8,
    UserFailureType.NAP_NOT_FOUND: 19.4,
    UserFailureType.SDP_SEARCH_FAILED: 38.6,
    UserFailureType.CONNECT_FAILED: 0.5,
    UserFailureType.PAN_CONNECT_FAILED: 5.7,
    UserFailureType.BIND_FAILED: 0.1,
    UserFailureType.SW_ROLE_COMMAND_FAILED: 0.2,
    UserFailureType.INQUIRY_SCAN_FAILED: 0.1,
}

#: One evidence burst: (system failure type, message variant, origin).
Evidence = Tuple[SystemFailureType, str, Origin]

#: Per user failure: list of (cause weight %, evidence bursts).
#: ``Origin.NONE`` causes register no system-level entries at all, so
#: the analysis finds no error-failure relationship for them — exactly
#: what the paper reports for inquiry/scan failures and data mismatch.
CAUSE_WEIGHTS: Dict[UserFailureType, List[Tuple[float, List[Evidence]]]] = {
    UserFailureType.INQUIRY_SCAN_FAILED: [
        # "For some failures, such as Inquiry/Scan failed, no
        # relationships has been found."
        (100.0, []),
    ],
    UserFailureType.SDP_SEARCH_FAILED: [
        (37.2, [(SystemFailureType.SDP, "refused", Origin.LOCAL)]),
        (13.7, [(SystemFailureType.SDP, "timeout", Origin.LOCAL)]),
        (20.0, [(SystemFailureType.SDP, "unavailable", Origin.NAP)]),
        (20.0, [(SystemFailureType.HCI, "timeout", Origin.LOCAL)]),
        (9.1, []),
    ],
    UserFailureType.NAP_NOT_FOUND: [
        (18.8, [(SystemFailureType.SDP, "timeout", Origin.LOCAL)]),
        (20.2, [(SystemFailureType.SDP, "unavailable", Origin.NAP)]),
        (6.0, [(SystemFailureType.HCI, "timeout", Origin.LOCAL)]),
        (1.0, [(SystemFailureType.L2CAP, "unexpected_start", Origin.LOCAL)]),
        (54.0, []),
    ],
    UserFailureType.CONNECT_FAILED: [
        # "mostly due to timeout problems in the HCI module, either from
        # the local machine or from the NAP ... when a connection request
        # is issued on a busy device"
        (85.1, [(SystemFailureType.HCI, "timeout", Origin.LOCAL)]),
        (5.2, [(SystemFailureType.HCI, "timeout", Origin.NAP)]),
        (2.5, [(SystemFailureType.L2CAP, "unexpected_start", Origin.LOCAL)]),
        (2.3, [(SystemFailureType.L2CAP, "unexpected_cont", Origin.NAP)]),
        (4.9, []),
    ],
    UserFailureType.PAN_CONNECT_FAILED: [
        # "PAN connection failures are frequently related to failures
        # reported by the SDP daemon (the 96.5% of the cases)"
        (96.5, [(SystemFailureType.SDP, "unavailable", Origin.NAP)]),
        (3.5, [(SystemFailureType.HCI, "invalid_handle", Origin.LOCAL)]),
    ],
    UserFailureType.BIND_FAILED: [
        # Bind before T_H: the BNEP interface is not configured yet.
        (55.5, [(SystemFailureType.HOTPLUG, "timeout", Origin.LOCAL)]),
        # Bind before T_C: HCI command for invalid handle.
        (25.0, [(SystemFailureType.HCI, "invalid_handle", Origin.LOCAL)]),
        (19.5, [(SystemFailureType.BNEP, "no_module", Origin.LOCAL)]),
    ],
    UserFailureType.SW_ROLE_REQUEST_FAILED: [
        # "command transmission timeouts signaled by the HCI module (the
        # 91.1% of switch role request failures)"
        (91.1, [(SystemFailureType.HCI, "timeout", Origin.LOCAL)]),
        (8.9, [(SystemFailureType.BCSP, "missing", Origin.LOCAL)]),
    ],
    UserFailureType.SW_ROLE_COMMAND_FAILED: [
        # "often related to out of order packets ... BCSP (49.7%)";
        # "unexpected L2CAP frames (0.9% local, 4.4% on the NAP), HCI
        # command for invalid handle (10.9% local, 2.4% NAP), and
        # occupied BNEP device (18.8% local)"
        (49.7, [(SystemFailureType.BCSP, "out_of_order", Origin.LOCAL)]),
        (18.8, [(SystemFailureType.BNEP, "occupied", Origin.LOCAL)]),
        (10.9, [(SystemFailureType.HCI, "invalid_handle", Origin.LOCAL)]),
        (2.4, [(SystemFailureType.HCI, "invalid_handle", Origin.NAP)]),
        (0.9, [(SystemFailureType.L2CAP, "unexpected_start", Origin.LOCAL)]),
        (4.4, [(SystemFailureType.L2CAP, "unexpected_cont", Origin.NAP)]),
        (8.2, [(SystemFailureType.USB, "no_address", Origin.LOCAL)]),
        (4.7, []),
    ],
    UserFailureType.PACKET_LOSS: [
        # Broken links surface as HCI errors on both ends, BCSP transport
        # faults on PDAs, BNEP interface errors, and (9 %) pure channel
        # losses with no system-level evidence.
        (32.1, [(SystemFailureType.HCI, "invalid_handle", Origin.LOCAL)]),
        (17.2, [(SystemFailureType.HCI, "timeout", Origin.NAP)]),
        (15.4, [(SystemFailureType.BCSP, "missing", Origin.LOCAL)]),
        (21.8, [(SystemFailureType.BNEP, "add_failed", Origin.LOCAL)]),
        (0.9, [(SystemFailureType.L2CAP, "unexpected_cont", Origin.LOCAL)]),
        (0.9, [(SystemFailureType.L2CAP, "unexpected_start", Origin.NAP)]),
        (2.7, [(SystemFailureType.USB, "no_address", Origin.LOCAL)]),
        (9.0, []),
    ],
    UserFailureType.DATA_MISMATCH: [
        # Undetected corruption: nothing notices, so nothing is logged.
        (100.0, []),
    ],
}

#: Per user failure: weights (%) of damage scopes 1..7 — Table 3 rows.
#: Rows sum to 100.  Data mismatch has no recovery defined (empty row).
#:
#: Note on reconstruction: the paper's Table 3 and Table 4 are not
#: mutually consistent under any fixed per-action durations (Table 3's
#: reboot shares would give a SIRA MTTR above the manual app-restart
#: scenario, contradicting Table 4's availability ladder).  These rows
#: keep the readable Table 3 anchors for the cheap actions (columns
#: 1-3, which also pin the 58.4 % coverage) and shift part of the
#: reboot-column mass into the multiple-app-restart column so that
#: Table 4's ordering (reboot < app+reboot < SIRAs < SIRAs+masking)
#: holds, as it must.
SCOPE_WEIGHTS: Dict[UserFailureType, List[float]] = {
    #                          ip    conn  stack  app   app+  boot  boot+
    UserFailureType.INQUIRY_SCAN_FAILED: [0.0, 0.0, 34.5, 30.0, 19.5, 12.0, 4.0],
    UserFailureType.SDP_SEARCH_FAILED: [0.0, 37.2, 39.8, 1.0, 12.0, 9.0, 1.0],
    UserFailureType.NAP_NOT_FOUND: [0.0, 3.0, 61.4, 3.8, 17.8, 14.0, 0.0],
    UserFailureType.CONNECT_FAILED: [0.1, 0.4, 14.9, 55.8, 3.2, 25.6, 0.0],
    UserFailureType.PAN_CONNECT_FAILED: [0.0, 5.5, 35.7, 33.1, 12.2, 8.0, 5.5],
    UserFailureType.BIND_FAILED: [0.0, 0.0, 62.4, 30.0, 3.9, 1.7, 2.0],
    UserFailureType.SW_ROLE_REQUEST_FAILED: [0.0, 5.6, 48.2, 28.4, 9.8, 8.0, 0.0],
    UserFailureType.SW_ROLE_COMMAND_FAILED: [0.0, 46.4, 20.4, 28.4, 1.1, 2.4, 1.3],
    UserFailureType.PACKET_LOSS: [5.9, 7.2, 25.8, 33.1, 14.9, 12.0, 1.1],
    UserFailureType.DATA_MISMATCH: [],
}

#: Overall user-failure intensity: expected user failures per BlueTest
#: cycle (both workloads).  An average cycle lasts about 50 simulated
#: seconds, so this targets the paper's unmasked MTTF of ~630 s.
FAILURES_PER_CYCLE = 0.135

#: Probability that the S (inquiry/scan) and SDP flags are true in a
#: cycle — uniform, per the paper.
SCAN_FLAG_PROBABILITY = 0.5
SDP_FLAG_PROBABILITY = 0.5

#: Fraction of PAN-connect failures that manifest when the SDP search
#: was NOT performed (the paper measured exactly 96.5 %).
PAN_CONNECT_NO_SDP_FRACTION = 0.965

#: Node-profile rate multipliers: some failure types concentrate on
#: specific host classes (paper §6 / figure 4).
PDA_SW_ROLE_CMD_MULTIPLIER = 8.0  # BCSP complexity on PDAs
#: Bind failures "only appeared on Azzurro and Win" (HAL/hotplug issue).
BIND_PRONE_NODES = frozenset({"Azzurro", "Win"})

#: Application-specific multipliers on the per-packet transfer hazard:
#: P2P's long continuous sessions overload the channel; streaming's
#: isochronous pacing fits the BT TDD scheme better (paper fig. 3c).
APPLICATION_HAZARD_MULTIPLIERS: Dict[str, float] = {
    "web": 1.0,
    "mail": 1.0,
    "ftp": 1.0,
    "p2p": 1.35,
    "streaming": 0.75,
    "random": 1.0,
}

#: Per-baseband-packet hazards of the data-transfer phase.
LINK_BREAK_HAZARD = 2.2e-6  # injected broken-link probability per packet
MISMATCH_HAZARD = 6.5e-8  # host-transport corruption per packet
#: Connection infant mortality (paper fig. 3b): a fraction of freshly
#: set-up connections carries a latent defect that hugely raises the
#: break hazard over its first packets.
LATENT_DEFECT_PROBABILITY = 0.050
LATENT_HAZARD_MULTIPLIER = 180.0
LATENT_DEFECT_PACKETS = 2000.0  # e-folding age (in packets) of the defect

#: Durations (seconds) of each recovery action.  The reboot time is the
#: paper's observed minimum TTR of the reboot-only scenario (210 s);
#: the IP socket reset matches the SIRA scenario's minimum (2 s).
SIRA_DURATIONS: List[float] = [2.0, 5.0, 10.0, 30.0, 30.0, 210.0, 210.0]

#: Retry caps of the two "multiple" actions (paper §4).
MAX_APP_RESTARTS = 3
MAX_SYSTEM_REBOOTS = 5

#: Masking parameters (paper §4, Error Masking Strategies).
RETRY_MASK_ATTEMPTS = 2  # "repeating the action up to 2 times"
RETRY_MASK_WAIT = 1.0  # "... with 1 second wait between retries"
#: Probability that one retry clears the transient cause.
RETRY_MASK_EFFECTIVENESS = 0.65  # two retries -> ~88 % masked


def normalized_shares() -> Dict[UserFailureType, float]:
    """``USER_FAILURE_SHARES`` normalised to fractions summing to 1."""
    total = sum(USER_FAILURE_SHARES.values())
    return {k: v / total for k, v in USER_FAILURE_SHARES.items()}


#: Failure types whose activation is hazard-driven (sampled per
#: baseband packet during the transfer phase) rather than drawn per
#: stack operation; the importance-sampling boost cannot tilt them.
HAZARD_DRIVEN_TYPES = frozenset(
    {UserFailureType.PACKET_LOSS, UserFailureType.DATA_MISMATCH}
)


def rare_failure_types(threshold_pct: float = 1.0) -> Tuple[UserFailureType, ...]:
    """The operation-drawn failure types below ``threshold_pct`` share.

    These are the low-rate SIRA classes whose confidence intervals need
    enormous plain-sampling budgets (a 0.1 % class appears once per
    thousand failures); they are the default target set of the
    rare-event importance sampling in :mod:`repro.parallel`.  Hazard-
    driven transfer-phase types are excluded: the boost tilts the
    per-operation activation draw, not the per-packet hazards.
    """
    return tuple(
        failure
        for failure in UserFailureType
        if failure not in HAZARD_DRIVEN_TYPES
        and USER_FAILURE_SHARES[failure] < threshold_pct
    )


def validate() -> None:
    """Sanity-check the calibration tables; raises ValueError on drift."""
    share_total = sum(USER_FAILURE_SHARES.values())
    if abs(share_total - 100.0) > 1e-6:
        raise ValueError(f"failure shares sum to {share_total}, expected 100")
    for failure, causes in CAUSE_WEIGHTS.items():
        total = sum(w for w, _ in causes)
        if abs(total - 100.0) > 1e-6:
            raise ValueError(f"cause weights for {failure} sum to {total}")
    for failure, row in SCOPE_WEIGHTS.items():
        if not row:
            continue
        if len(row) != 7:
            raise ValueError(f"scope row for {failure} has {len(row)} columns")
        total = sum(row)
        if abs(total - 100.0) > 1e-6:
            raise ValueError(f"scope weights for {failure} sum to {total}")


validate()

__all__ = [
    "DamageScope",
    "Origin",
    "Evidence",
    "USER_FAILURE_SHARES",
    "CAUSE_WEIGHTS",
    "SCOPE_WEIGHTS",
    "FAILURES_PER_CYCLE",
    "SCAN_FLAG_PROBABILITY",
    "SDP_FLAG_PROBABILITY",
    "PAN_CONNECT_NO_SDP_FRACTION",
    "PDA_SW_ROLE_CMD_MULTIPLIER",
    "BIND_PRONE_NODES",
    "APPLICATION_HAZARD_MULTIPLIERS",
    "LINK_BREAK_HAZARD",
    "MISMATCH_HAZARD",
    "LATENT_DEFECT_PROBABILITY",
    "LATENT_HAZARD_MULTIPLIER",
    "LATENT_DEFECT_PACKETS",
    "SIRA_DURATIONS",
    "MAX_APP_RESTARTS",
    "MAX_SYSTEM_REBOOTS",
    "RETRY_MASK_ATTEMPTS",
    "RETRY_MASK_WAIT",
    "RETRY_MASK_EFFECTIVENESS",
    "HAZARD_DRIVEN_TYPES",
    "normalized_shares",
    "rare_failure_types",
    "validate",
]

"""repro — reproduction of "Collecting and Analyzing Failure Data of
Bluetooth Personal Area Networks" (Cinque, Cotroneo, Russo; DSN 2006).

The package simulates the paper's two Bluetooth PAN testbeds end to end
— protocol stack, radio channel, fault injection, BlueTest workloads,
log collection — and re-implements the paper's analysis pipeline on the
generated failure data: merge-and-coalesce, failure classification,
error-failure relationships (Table 2), SIRA effectiveness (Table 3),
dependability improvement (Table 4) and the §6 failure distributions.

Quickstart::

    from repro import run_campaign, build_relationship_table
    from repro.reporting import render_relationship_table

    result = run_campaign(duration=86_400, seed=7)
    table = build_relationship_table(result.repository, result.node_nap_pairs())
    print(render_relationship_table(table))
"""

from .core import (
    CampaignResult,
    DAY,
    DependabilityReport,
    FailureModel,
    PAPER_WINDOW,
    RelationshipTable,
    SiraTable,
    SystemFailureType,
    UserFailureType,
    build_dependability_report,
    build_relationship_table,
    build_sira_table,
    coalesce,
    run_campaign,
    run_connection_length_experiment,
    sensitivity_analysis,
)
from .core.scorecard import Scorecard, evaluate as evaluate_scorecard
from .core.summary import AnalysisSummary, summarize_repository
from .recovery import MaskingPolicy, RecoveryEngine
from .sim import RandomStreams, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "run_campaign",
    "run_connection_length_experiment",
    "CampaignResult",
    "DAY",
    "FailureModel",
    "UserFailureType",
    "SystemFailureType",
    "RelationshipTable",
    "build_relationship_table",
    "SiraTable",
    "build_sira_table",
    "DependabilityReport",
    "build_dependability_report",
    "coalesce",
    "sensitivity_analysis",
    "PAPER_WINDOW",
    "MaskingPolicy",
    "RecoveryEngine",
    "Simulator",
    "RandomStreams",
    "Scorecard",
    "evaluate_scorecard",
    "AnalysisSummary",
    "summarize_repository",
]

"""repro — reproduction of "Collecting and Analyzing Failure Data of
Bluetooth Personal Area Networks" (Cinque, Cotroneo, Russo; DSN 2006).

The package simulates the paper's two Bluetooth PAN testbeds end to end
— protocol stack, radio channel, fault injection, BlueTest workloads,
log collection — and re-implements the paper's analysis pipeline on the
generated failure data: merge-and-coalesce, failure classification,
error-failure relationships (Table 2), SIRA effectiveness (Table 3),
dependability improvement (Table 4) and the §6 failure distributions.

Quickstart::

    from repro import api, build_relationship_table
    from repro.reporting import render_relationship_table

    result = api.run(duration=86_400.0, seed=7)
    table = build_relationship_table(result.repository, result.node_nap_pairs())
    print(render_relationship_table(table))
"""

import logging as _logging

#: Root name of the package logger hierarchy.
LOGGER_NAME = "repro"


def get_logger(name: str = "") -> "_logging.Logger":
    """The shared ``repro`` package logger (or a named child of it).

    Every module logs through this hierarchy — never through ad-hoc
    ``logging.getLogger(__name__)`` roots — so one call to
    :func:`configure_logging` (or the CLI's ``-v/--verbose`` flag)
    governs the whole package.

    NOTE: defined before the subpackage imports below so that modules
    deep in the package can ``from repro import get_logger`` while the
    package is still initialising.
    """
    return _logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def configure_logging(verbosity: int = 0, stream=None) -> "_logging.Logger":
    """Configure the package logger for console output.

    ``verbosity`` 0 shows warnings and errors, 1 adds info, 2+ adds
    debug.  Idempotent: re-configuring adjusts the level instead of
    stacking handlers.  Returns the root package logger.
    """
    root = get_logger()
    level = (
        _logging.WARNING
        if verbosity <= 0
        else _logging.INFO if verbosity == 1 else _logging.DEBUG
    )
    root.setLevel(level)
    if not root.handlers:
        handler = _logging.StreamHandler(stream)
        handler.setFormatter(
            _logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    else:
        for handler in root.handlers:
            if stream is not None and isinstance(handler, _logging.StreamHandler):
                handler.setStream(stream)
    return root


from .core import (
    CampaignResult,
    DAY,
    DependabilityReport,
    FailureModel,
    PAPER_WINDOW,
    RelationshipTable,
    SiraTable,
    SystemFailureType,
    UserFailureType,
    build_dependability_report,
    build_relationship_table,
    build_sira_table,
    coalesce,
    run_campaign,
    run_connection_length_experiment,
    sensitivity_analysis,
)
from .core.scorecard import Scorecard, evaluate as evaluate_scorecard
from .core.summary import AnalysisSummary, summarize_repository
from .obs import Observability
from .recovery import MaskingPolicy, RecoveryEngine
from .sim import RandomStreams, Simulator
from .bluetooth import Channel, ChannelConfig, LossProfile, TransferStatistics
from . import api
from .api import ExperimentConfig

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "LOGGER_NAME",
    "get_logger",
    "configure_logging",
    "api",
    "ExperimentConfig",
    "Channel",
    "ChannelConfig",
    "LossProfile",
    "TransferStatistics",
    "run_campaign",
    "run_connection_length_experiment",
    "CampaignResult",
    "DAY",
    "FailureModel",
    "UserFailureType",
    "SystemFailureType",
    "RelationshipTable",
    "build_relationship_table",
    "SiraTable",
    "build_sira_table",
    "DependabilityReport",
    "build_dependability_report",
    "coalesce",
    "sensitivity_analysis",
    "PAPER_WINDOW",
    "MaskingPolicy",
    "RecoveryEngine",
    "Simulator",
    "RandomStreams",
    "Observability",
    "Scorecard",
    "evaluate_scorecard",
    "AnalysisSummary",
    "summarize_repository",
]

"""ASCII 2-D chart rendering.

:func:`format_series_plot` draws an (x, y) series on a character grid —
used for the coalescence sensitivity curve (fig. 2) and the
connection-age histogram (fig. 3b), where the *shape* of a curve is the
result.  Marks are placed at scaled coordinates; an optional vertical
marker highlights a chosen x (e.g. the selected 330 s window).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


def format_series_plot(
    series: Sequence[Tuple[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    mark_x: Optional[float] = None,
) -> str:
    """Render an (x, y) series as an ASCII plot.

    ``log_x`` plots x on a log10 scale (the fig.-2 window sweep spans
    1 s to 1 h).  ``mark_x`` draws a vertical ``|`` column at that x.
    """
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    points = [(float(x), float(y)) for x, y in series]
    if not points:
        return title
    if log_x:
        if any(x <= 0 for x, _ in points):
            raise ValueError("log_x requires positive x values")
        points = [(math.log10(x), y) for x, y in points]
        marker = math.log10(mark_x) if mark_x and mark_x > 0 else None
    else:
        marker = mark_x

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def col_of(x: float) -> int:
        return min(width - 1, int(round((x - x_lo) / x_span * (width - 1))))

    def row_of(y: float) -> int:
        # Row 0 is the top of the plot.
        return min(height - 1, int(round((y_hi - y) / y_span * (height - 1))))

    if marker is not None and x_lo <= marker <= x_hi:
        col = col_of(marker)
        for row in range(height):
            grid[row][col] = "|"
    for x, y in points:
        grid[row_of(y)][col_of(x)] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.append(f"{y_hi:>10.1f} +{''.join(grid[0])}")
    for row in range(1, height - 1):
        lines.append(" " * 11 + "+" + "".join(grid[row]))
    lines.append(f"{y_lo:>10.1f} +{''.join(grid[-1])}")
    axis_lo = 10 ** x_lo if log_x else x_lo
    axis_hi = 10 ** x_hi if log_x else x_hi
    scale = "log " if log_x else ""
    lines.append(
        " " * 12 + f"{axis_lo:g} .. {axis_hi:g}  ({scale}{x_label});  y = {y_label}"
    )
    return "\n".join(lines)


__all__ = ["format_series_plot"]

"""ASCII rendering of the paper's tables and figures.

Renderers take the analysis objects of :mod:`repro.core` and print the
same rows/series the paper reports, so a benchmark run reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Plain fixed-width table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (columns - 1)))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    series: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "%",
) -> str:
    """Horizontal ASCII bar chart (one bar per labelled value)."""
    if not series:
        return title
    peak = max(value for _, value in series) or 1.0
    label_width = max(len(label) for label, _ in series)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in series:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Compact percentage cell ('-' for zero)."""
    if value == 0.0:
        return "-"
    return f"{value:.{digits}f}"


def render_relationship_table(table, user_order=None, column_order=None) -> str:
    """Render Table 2 (error-failure relationship)."""
    from repro.core.failure_model import UserFailureType
    from repro.core.relationship import NO_EVIDENCE, all_columns

    user_order = user_order or list(UserFailureType)
    column_order = column_order or [
        c for c in all_columns() if c != NO_EVIDENCE
    ] + [NO_EVIDENCE]
    shares = table.shares()
    headers = ["User failure", "TOT"] + column_order
    rows = []
    for user in user_order:
        if user not in shares:
            continue
        row_pct = table.row_percentages(user)
        rows.append(
            [user.value, percent(shares.get(user, 0.0))]
            + [percent(row_pct.get(col, 0.0)) for col in column_order]
        )
    totals = table.column_totals()
    rows.append(
        ["Total", "100.0"] + [percent(totals.get(col, 0.0)) for col in column_order]
    )
    return format_table(headers, rows, title="Error-Failure Relationship (Table 2)")


def render_sira_table(table) -> str:
    """Render Table 3 (user failures vs recovery actions)."""
    from repro.core.failure_model import UserFailureType
    from repro.recovery.sira import SIRA_NAMES

    shares = table.shares()
    headers = ["User failure", "TOT"] + list(SIRA_NAMES)
    rows = []
    for user in UserFailureType:
        if user not in shares:
            continue
        row_pct = table.row_percentages(user)
        rows.append(
            [user.value, percent(shares.get(user, 0.0))]
            + [percent(row_pct.get(name, 0.0)) for name in SIRA_NAMES]
        )
    total_row = table.total_row()
    rows.append(
        ["Total", "100.0"] + [percent(total_row.get(name, 0.0)) for name in SIRA_NAMES]
    )
    return format_table(headers, rows, title="User failures-SIRA relationship (Table 3)")


def render_dependability_table(report) -> str:
    """Render Table 4 (dependability improvement)."""
    order = ["only_reboot", "app_restart_reboot", "siras", "siras_masking"]
    labels = {
        "only_reboot": "Only Reboot",
        "app_restart_reboot": "App restart and Reboot",
        "siras": "With only SIRAs",
        "siras_masking": "SIRAs and masking",
    }
    headers = ["Metric"] + [labels[name] for name in order]
    metrics = [
        ("MTTF (s.)", lambda m: f"{m.mttf:.2f}"),
        ("MTTR (s.)", lambda m: f"{m.mttr:.2f}"),
        ("Availability*", lambda m: f"{m.availability:.3f}"),
        ("% Coverage", lambda m: f"{m.coverage_pct:.2f}"),
        ("% Masking", lambda m: f"{m.masking_pct:.2f}"),
        ("MIN TTF (s.)", lambda m: f"{m.min_ttf:.0f}"),
        ("MAX TTF (s.)", lambda m: f"{m.max_ttf:.0f}"),
        ("DEV_STD TTF (s.)", lambda m: f"{m.std_ttf:.2f}"),
        ("MIN TTR (s.)", lambda m: f"{m.min_ttr:.0f}"),
        ("MAX TTR (s.)", lambda m: f"{m.max_ttr:.0f}"),
        ("DEV_STD TTR (s.)", lambda m: f"{m.std_ttr:.2f}"),
        ("Failures", lambda m: str(m.failures)),
    ]
    rows = []
    for label, fn in metrics:
        rows.append([label] + [fn(report[name]) for name in order])
    footer = "* = MTTF/(MTTF+MTTR)"
    return (
        format_table(headers, rows, title="Dependability Improvement (Table 4)")
        + "\n"
        + footer
    )


def render_obs_summary(observability, top_metrics: int = 12) -> str:
    """One-screen summary of an instrumented run.

    Three sections: the busiest counters of the metrics registry, the
    engine profiler's hottest callsites, and the fault-propagation paths
    reconstructed from the trace.
    """
    from repro.obs.export import render_propagation_summary

    sections: List[str] = []
    registry = observability.registry
    if registry.enabled:
        rows = []
        for family in registry.families():
            if family.KIND != "counter":
                continue
            for values, child in sorted(family.samples()):
                label_text = ",".join(
                    f"{k}={v}" for k, v in zip(family.label_names, values)
                )
                name = f"{family.name}{{{label_text}}}" if label_text else family.name
                rows.append((name, child.value))
        rows.sort(key=lambda r: -r[1])
        table_rows = [[name, f"{value:g}"] for name, value in rows[:top_metrics]]
        if table_rows:
            sections.append(
                format_table(["Counter", "Value"], table_rows, title="Top counters")
            )
    profiler = observability.profiler
    if profiler is not None and profiler.events_processed:
        sections.append(profiler.render())
    tracer = observability.tracer
    if tracer.enabled and tracer.spans:
        sections.append(render_propagation_summary(tracer))
    return "\n\n".join(sections) if sections else "observability: nothing recorded"


__all__ = [
    "format_table",
    "format_bar_chart",
    "percent",
    "render_relationship_table",
    "render_sira_table",
    "render_dependability_table",
    "render_obs_summary",
]

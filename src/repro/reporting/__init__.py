"""ASCII table/chart rendering of the paper's artifacts."""

from .tables import (
    format_bar_chart,
    format_table,
    percent,
    render_dependability_table,
    render_obs_summary,
    render_relationship_table,
    render_sira_table,
)
from .charts import format_series_plot

__all__ = [
    "format_table",
    "format_bar_chart",
    "format_series_plot",
    "percent",
    "render_relationship_table",
    "render_sira_table",
    "render_dependability_table",
    "render_obs_summary",
]

"""Byte-level SDP protocol data units.

The Service Discovery Protocol runs request/response transactions over
L2CAP PSM 0x0001.  This module provides exact codecs for the PDUs the
PAN path uses — ServiceSearchRequest/Response (find the NAP's record
handles by UUID) and ServiceAttributeRequest/Response — including the
transaction-id matching and the error-response PDU whose arrival is one
of the SDP failure signatures ("connection with the SDP server refused
or timed out").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class PduId(enum.IntEnum):
    """SDP PDU identifier bytes."""

    ERROR_RESPONSE = 0x01
    SERVICE_SEARCH_REQUEST = 0x02
    SERVICE_SEARCH_RESPONSE = 0x03
    SERVICE_ATTRIBUTE_REQUEST = 0x04
    SERVICE_ATTRIBUTE_RESPONSE = 0x05


class SdpErrorCode(enum.IntEnum):
    """Error codes carried by an SDP ErrorResponse."""

    INVALID_SYNTAX = 0x0003
    INVALID_PDU_SIZE = 0x0004
    INVALID_CONTINUATION = 0x0005
    INSUFFICIENT_RESOURCES = 0x0006


class SdpDecodeError(ValueError):
    """A PDU failed to parse."""


def _header(pdu_id: int, transaction_id: int, body: bytes) -> bytes:
    if not 0 <= transaction_id <= 0xFFFF:
        raise ValueError(f"transaction id out of range: {transaction_id}")
    return bytes([pdu_id]) + transaction_id.to_bytes(2, "big") + len(body).to_bytes(2, "big") + body


def _split_header(data: bytes) -> Tuple[int, int, bytes]:
    if len(data) < 5:
        raise SdpDecodeError("truncated SDP PDU")
    pdu_id = data[0]
    transaction_id = int.from_bytes(data[1:3], "big")
    length = int.from_bytes(data[3:5], "big")
    body = data[5:]
    if len(body) != length:
        raise SdpDecodeError(
            f"SDP length mismatch: header says {length}, got {len(body)}"
        )
    return pdu_id, transaction_id, body


def _encode_uuid_seq(uuids: List[int]) -> bytes:
    # Data element: sequence (0x35) of 16-bit UUIDs (0x19 xx xx).
    elements = b"".join(bytes([0x19]) + u.to_bytes(2, "big") for u in uuids)
    if len(elements) > 0xFF:
        raise ValueError("UUID list too long")
    return bytes([0x35, len(elements)]) + elements


def _decode_uuid_seq(data: bytes) -> Tuple[List[int], bytes]:
    if len(data) < 2 or data[0] != 0x35:
        raise SdpDecodeError("expected a data-element sequence of UUIDs")
    length = data[1]
    body = data[2 : 2 + length]
    if len(body) != length:
        raise SdpDecodeError("truncated UUID sequence")
    uuids = []
    index = 0
    while index < length:
        if body[index] != 0x19 or index + 3 > length:
            raise SdpDecodeError("malformed 16-bit UUID element")
        uuids.append(int.from_bytes(body[index + 1 : index + 3], "big"))
        index += 3
    return uuids, data[2 + length :]


@dataclass(frozen=True)
class ServiceSearchRequest:
    """Find service record handles matching a UUID pattern."""

    transaction_id: int
    uuids: List[int]
    max_records: int = 10

    def encode(self) -> bytes:
        """Serialise to the SDP wire format."""
        body = (
            _encode_uuid_seq(self.uuids)
            + self.max_records.to_bytes(2, "big")
            + b"\x00"  # no continuation state
        )
        return _header(PduId.SERVICE_SEARCH_REQUEST, self.transaction_id, body)

    @classmethod
    def decode(cls, data: bytes) -> "ServiceSearchRequest":
        pdu_id, transaction_id, body = _split_header(data)
        if pdu_id != PduId.SERVICE_SEARCH_REQUEST:
            raise SdpDecodeError(f"not a ServiceSearchRequest: {pdu_id:#x}")
        uuids, rest = _decode_uuid_seq(body)
        if len(rest) < 3:
            raise SdpDecodeError("truncated ServiceSearchRequest tail")
        max_records = int.from_bytes(rest[0:2], "big")
        return cls(transaction_id=transaction_id, uuids=uuids, max_records=max_records)


@dataclass(frozen=True)
class ServiceSearchResponse:
    """Record handles matching a prior search."""

    transaction_id: int
    handles: List[int] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialise to the SDP wire format."""
        total = len(self.handles)
        body = (
            total.to_bytes(2, "big")
            + total.to_bytes(2, "big")
            + b"".join(h.to_bytes(4, "big") for h in self.handles)
            + b"\x00"
        )
        return _header(PduId.SERVICE_SEARCH_RESPONSE, self.transaction_id, body)

    @classmethod
    def decode(cls, data: bytes) -> "ServiceSearchResponse":
        pdu_id, transaction_id, body = _split_header(data)
        if pdu_id != PduId.SERVICE_SEARCH_RESPONSE:
            raise SdpDecodeError(f"not a ServiceSearchResponse: {pdu_id:#x}")
        if len(body) < 5:
            raise SdpDecodeError("truncated ServiceSearchResponse")
        current = int.from_bytes(body[2:4], "big")
        expected = 4 + 4 * current + 1
        if len(body) != expected:
            raise SdpDecodeError("handle list length mismatch")
        handles = [
            int.from_bytes(body[4 + 4 * i : 8 + 4 * i], "big") for i in range(current)
        ]
        return cls(transaction_id=transaction_id, handles=handles)


@dataclass(frozen=True)
class ErrorResponse:
    """The SDP server refused or could not process a request."""

    transaction_id: int
    error_code: int

    def encode(self) -> bytes:
        """Serialise to the SDP wire format."""
        return _header(
            PduId.ERROR_RESPONSE,
            self.transaction_id,
            int(self.error_code).to_bytes(2, "big"),
        )

    @classmethod
    def decode(cls, data: bytes) -> "ErrorResponse":
        pdu_id, transaction_id, body = _split_header(data)
        if pdu_id != PduId.ERROR_RESPONSE:
            raise SdpDecodeError(f"not an ErrorResponse: {pdu_id:#x}")
        if len(body) != 2:
            raise SdpDecodeError("bad ErrorResponse body")
        return cls(transaction_id=transaction_id, error_code=int.from_bytes(body, "big"))


def decode_pdu(data: bytes):
    """Decode any supported SDP PDU by its id byte."""
    if not data:
        raise SdpDecodeError("empty SDP PDU")
    decoders = {
        PduId.SERVICE_SEARCH_REQUEST: ServiceSearchRequest,
        PduId.SERVICE_SEARCH_RESPONSE: ServiceSearchResponse,
        PduId.ERROR_RESPONSE: ErrorResponse,
    }
    decoder = decoders.get(data[0])
    if decoder is None:
        raise SdpDecodeError(f"unsupported SDP PDU id {data[0]:#x}")
    return decoder.decode(data)


def run_transaction(server, request: ServiceSearchRequest):
    """Execute a search transaction against an :class:`SdpServer`.

    Returns the response PDU (ServiceSearchResponse or ErrorResponse)
    with the request's transaction id echoed — the matching rule real
    clients enforce.
    """
    matches: List[int] = []
    for record in server.records():
        if record.uuid in request.uuids:
            # Record handle: stable per (provider, uuid) pair.
            matches.append(0x0001_0000 | record.uuid)
    if len(matches) > request.max_records:
        matches = matches[: request.max_records]
    return ServiceSearchResponse(
        transaction_id=request.transaction_id, handles=matches
    )


__all__ = [
    "PduId",
    "SdpErrorCode",
    "SdpDecodeError",
    "ServiceSearchRequest",
    "ServiceSearchResponse",
    "ErrorResponse",
    "decode_pdu",
    "run_transaction",
]

"""Baseband ACL packet types and framing.

The six ACL data packet types of Bluetooth v1.1 (the paper's testbeds):

========  =====  =====  ==================  ==========
Type      Slots  FEC    Max payload (B)     CRC
========  =====  =====  ==================  ==========
DM1       1      2/3    17                  16-bit
DH1       1      none   27                  16-bit
DM3       3      2/3    121                 16-bit
DH3       3      none   183                 16-bit
DM5       5      2/3    224                 16-bit
DH5       5      none   339                 16-bit
========  =====  =====  ==================  ==========

Every packet starts with a 72-bit access code and an 18-bit header
(protected by rate-1/3 FEC); the payload carries a payload header, the
user payload, and the 16-bit CRC.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

SLOT_SECONDS = 625e-6  # one Baseband time slot
ACCESS_CODE_BITS = 72
HEADER_BITS = 18
HEADER_CODED_BITS = HEADER_BITS * 3  # rate-1/3 FEC
CRC_BITS = 16
PAYLOAD_HEADER_BITS = 16  # 2-byte payload header for multi-slot packets
SYMBOL_RATE = 1_000_000  # 1 Msym/s GFSK


class PacketType(enum.Enum):
    """The six ACL data packet types.

    The static per-type quantities (``spec``, ``slots``, ``fec``,
    ``max_payload``, ``air_bits``, ``duration``) are cached directly on
    each enum member once the spec table below is built — packet-type
    introspection is on the campaign hot path (one lookup per simulated
    payload), so the historical ``PACKET_SPECS[self]`` dict hop and the
    per-access ``air_bits``/``duration`` arithmetic are paid exactly
    once per process.
    """

    DM1 = "DM1"
    DH1 = "DH1"
    DM3 = "DM3"
    DH3 = "DH3"
    DM5 = "DM5"
    DH5 = "DH5"

    # Populated (per member) right after PACKET_SPECS is defined:
    spec: "PacketSpec"
    slots: int
    fec: bool
    max_payload: int
    air_bits: int
    duration: float
    code: str  # == .value, minus the DynamicClassAttribute descriptor hop


@dataclass(frozen=True)
class PacketSpec:
    """Static properties of one packet type.

    ``air_bits`` (total bits on air for a full packet) and ``duration``
    (air time plus the TDD return slot carrying the ACK) are derived
    once at construction rather than on every access.
    """

    type: "PacketType"
    slots: int
    fec: bool
    max_payload: int

    def __post_init__(self) -> None:
        payload_bits = (self.max_payload * 8) + PAYLOAD_HEADER_BITS + CRC_BITS
        if self.fec:
            payload_bits = math.ceil(payload_bits / 10) * 15
        object.__setattr__(
            self, "air_bits", ACCESS_CODE_BITS + HEADER_CODED_BITS + payload_bits
        )
        # ACL is TDD: a packet of n slots is followed by at least one
        # return slot carrying the acknowledgement.
        object.__setattr__(self, "duration", (self.slots + 1) * SLOT_SECONDS)

    def payload_bits(self, payload_len: int) -> int:
        """Bits on air for a payload of ``payload_len`` bytes."""
        raw = payload_len * 8 + PAYLOAD_HEADER_BITS + CRC_BITS
        if self.fec:
            return math.ceil(raw / 10) * 15
        return raw


PACKET_SPECS: Dict[PacketType, PacketSpec] = {
    PacketType.DM1: PacketSpec(PacketType.DM1, 1, True, 17),
    PacketType.DH1: PacketSpec(PacketType.DH1, 1, False, 27),
    PacketType.DM3: PacketSpec(PacketType.DM3, 3, True, 121),
    PacketType.DH3: PacketSpec(PacketType.DH3, 3, False, 183),
    PacketType.DM5: PacketSpec(PacketType.DM5, 5, True, 224),
    PacketType.DH5: PacketSpec(PacketType.DH5, 5, False, 339),
}

# Cache the static quantities on the enum members themselves, so the
# hot path reads plain instance attributes instead of walking
# property -> dict-hash -> property chains.
for _type, _spec in PACKET_SPECS.items():
    _type.spec = _spec
    _type.slots = _spec.slots
    _type.fec = _spec.fec
    _type.max_payload = _spec.max_payload
    _type.air_bits = _spec.air_bits
    _type.duration = _spec.duration
    _type.code = _type._value_
del _type, _spec

#: Order used when the Random workload draws the type by a binomial index.
PACKET_TYPE_ORDER: Tuple[PacketType, ...] = (
    PacketType.DM1,
    PacketType.DM3,
    PacketType.DM5,
    PacketType.DH1,
    PacketType.DH3,
    PacketType.DH5,
)


@dataclass
class AclPacket:
    """An ACL data packet in flight.

    ``payload`` is the user payload (bytes); framing (header, payload
    header, CRC, FEC) is applied by the Baseband at transmission time.
    """

    type: PacketType
    payload: bytes
    seqn: int = 0

    def __post_init__(self) -> None:
        if len(self.payload) > self.type.max_payload:
            raise ValueError(
                f"{self.type.value} payload of {len(self.payload)} B exceeds "
                f"maximum of {self.type.max_payload} B"
            )

    @property
    def air_bits(self) -> int:
        return (
            ACCESS_CODE_BITS
            + HEADER_CODED_BITS
            + self.type.spec.payload_bits(len(self.payload))
        )

    @property
    def duration(self) -> float:
        return self.type.spec.duration


def segment(data: bytes, packet_type: PacketType) -> List[bytes]:
    """Split ``data`` into chunks that fit one packet of ``packet_type``."""
    size = packet_type.max_payload
    if not data:
        return [b""]
    return [data[i : i + size] for i in range(0, len(data), size)]


def packets_needed(length: int, packet_type: PacketType) -> int:
    """Number of packets of ``packet_type`` needed for ``length`` bytes."""
    if length <= 0:
        return 1
    return math.ceil(length / packet_type.max_payload)  # max_payload is cached


def effective_throughput(packet_type: PacketType) -> float:
    """Best-case user throughput (bytes/s) for back-to-back packets."""
    spec = packet_type.spec
    return spec.max_payload / spec.duration


__all__ = [
    "PacketType",
    "PacketSpec",
    "PACKET_SPECS",
    "PACKET_TYPE_ORDER",
    "AclPacket",
    "segment",
    "packets_needed",
    "effective_throughput",
    "SLOT_SECONDS",
]

"""Vectorised Gilbert–Elliott sampling for the batch-fidelity fast path.

The bit-accurate engine walks every Baseband payload through
:meth:`repro.bluetooth.channel.Channel._advance` and the per-attempt ARQ
loop.  Batch fidelity replaces that walk with bulk draws against the
*same* memoised closed forms (:meth:`Channel.loss_profile`): whole
arrays of state-occupancy samples, per-payload outcomes and
transfer-level first-event indices, one numpy call per connection-cycle
chunk instead of one Python event per packet.

Everything here is a pure function of (pre-drawn uniforms, profile
scalars): the batch executor draws its randomness positionally from
prefix-stable substreams (see :func:`repro.sim.rng.numpy_generator`)
and hands slices in, so outcomes are deterministic and merge-stable at
any ``--jobs``.

The scalar bit-level path stays the oracle: the property tests compare
every sampler in this module against it within 4 sigma.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

import numpy as np

from .channel import ChannelConfig, LossProfile

#: Transfer status codes of :func:`bulk_transfer_outcomes` (int8 arrays).
TRANSFER_COMPLETED = 0
TRANSFER_LOSS = 1
TRANSFER_MISMATCH = 2

#: Per-payload outcome codes of :func:`bulk_payload_outcomes`, matching
#: the string vocabulary of ``Channel.sample_payload_outcome``.
PAYLOAD_OK = 0
PAYLOAD_RETRANSMITTED = 1
PAYLOAD_DROPPED = 2
PAYLOAD_MISMATCH = 3
PAYLOAD_OUTCOME_CODES: Tuple[str, ...] = ("ok", "retransmitted", "dropped", "mismatch")

#: Floor applied to uniforms before ``-log(u)``, as in the bit path.
_LOG_FLOOR = 1e-300


def bulk_state_occupancy(gen: Any, config: ChannelConfig, n: int) -> Any:
    """``n`` stationary BAD-state indicator samples (boolean array).

    The bit-accurate chain alternates exponential GOOD/BAD sojourns; at
    a uniformly random observation instant the occupancy is exactly the
    stationary probability ``config.stationary_bad``.
    """
    return gen.random(n) < config.stationary_bad


def bulk_payload_outcomes(gen: Any, profile: LossProfile, n: int) -> Any:
    """``n`` per-payload outcome codes from the stationary closed forms.

    Mirrors the decision tree of ``Channel.sample_payload_outcome``
    (hit -> undetected -> dropped, else good-state CRC retransmission)
    with independent uniform planes instead of sequential scalar draws.
    """
    u_hit = gen.random(n)
    u_kind = gen.random(n)
    u_drop = gen.random(n)
    hit = u_hit < profile.p_hit
    out = np.zeros(n, dtype=np.int8)
    out[~hit & (u_kind < profile.p_good_state_failure)] = PAYLOAD_RETRANSMITTED
    mismatch = hit & (u_kind < profile.p_undetected)
    dropped = hit & ~mismatch & (u_drop < profile.p_drop_given_hit)
    out[hit & ~mismatch & ~dropped] = PAYLOAD_RETRANSMITTED
    out[dropped] = PAYLOAD_DROPPED
    out[mismatch] = PAYLOAD_MISMATCH
    return out


def bulk_retransmission_counts(
    gen: Any, profile: LossProfile, config: ChannelConfig, n: int
) -> Any:
    """Retransmissions-per-payload samples under the closed-form model.

    * GOOD state: every (re)transmission fails independently with the
      good-state CRC probability, so the count is geometric.
    * Hit payloads: retries fail while the burst persists; with
      exponential bursts of mean ``config.mean_burst`` and one retry per
      packet slot, ``P(count > k) = exp(-k * duration / mean_burst)`` —
      the same expression whose ``k = retransmit_limit`` tail is the
      memoised ``p_drop_given_hit``.

    Counts are capped at ``config.retransmit_limit`` (the ARQ gives up
    and drops the payload there, as the bit-level loop does).
    """
    limit = int(config.retransmit_limit)
    duration = profile.packet_type.duration
    hit = gen.random(n) < profile.p_hit
    counts = np.zeros(n, dtype=np.int64)
    n_hit = int(hit.sum())
    if n_hit:
        burst_left = gen.exponential(config.mean_burst, n_hit)
        counts[hit] = np.ceil(burst_left / duration).astype(np.int64)
    n_good = n - n_hit
    if n_good:
        p_fail = profile.p_good_state_failure
        if p_fail > 0.0:
            # numpy's geometric counts trials to first success; the
            # success probability is the per-attempt pass rate.
            counts[~hit] = gen.geometric(1.0 - p_fail, n_good) - 1
    return np.minimum(counts, limit)


def bulk_transfer_outcomes(
    u_break: Any,
    u_mismatch: Any,
    n_payloads: Any,
    h_const: Any,
    p_mismatch: Any,
    per_payload: Any,
) -> Tuple[Any, Any, Any]:
    """Vectorised constant-hazard mirror of ``baseband.sample_transfer``.

    All inputs are arrays over cycles (pre-drawn uniforms plus per-cycle
    scalars); returns ``(status, event_index, duration)`` arrays where
    status uses the ``TRANSFER_*`` codes, ``event_index`` is the number
    of payloads exchanged before the event (``n_payloads`` when the
    transfer completes) and ``duration`` is the on-air transfer time.

    Latent-defect connections have an age-dependent hazard and must go
    through :func:`latent_break_index` instead; the executor routes the
    (rare) latent cycles around this fast path.
    """
    n = np.asarray(n_payloads, dtype=np.float64)
    target = -np.log(np.maximum(u_break, _LOG_FLOOR))
    with np.errstate(divide="ignore", invalid="ignore"):
        break_pos = np.where(h_const > 0.0, np.floor(target / h_const), np.inf)
    has_break = h_const * n >= target
    break_index = np.minimum(break_pos, n - 1.0)

    log_keep = np.log1p(-p_mismatch)
    log_u = np.log(np.maximum(u_mismatch, _LOG_FLOOR))
    # No mismatch when u < (1-p)^n, i.e. log u < n * log(1-p).
    has_mismatch = log_u >= n * log_keep
    with np.errstate(divide="ignore", invalid="ignore"):
        mismatch_index = np.minimum(np.floor(log_u / log_keep), n - 1.0)

    mismatch_wins = has_mismatch & (~has_break | (mismatch_index < break_index))
    loss_wins = has_break & ~mismatch_wins

    status = np.zeros(len(n), dtype=np.int8)
    status[loss_wins] = TRANSFER_LOSS
    status[mismatch_wins] = TRANSFER_MISMATCH

    event_index = n.copy()
    event_index[loss_wins] = break_index[loss_wins]
    event_index[mismatch_wins] = mismatch_index[mismatch_wins]
    event_index = event_index.astype(np.int64)

    payloads_on_air = np.where(status == TRANSFER_COMPLETED, n, event_index + 1.0)
    duration = payloads_on_air * per_payload
    return status, event_index, duration


def latent_break_index(
    u: float,
    h_const: float,
    break_hazard: float,
    latent_multiplier: float,
    latent_tau: float,
    start_age: float,
    n: int,
) -> Optional[int]:
    """Scalar break-position sample under the infant-mortality hazard.

    Identical arithmetic to the oracle's ``_sample_break_index`` latent
    branch, except the uniform is supplied (positionally pre-drawn)
    instead of pulled from an ``random.Random``.
    """
    target = -math.log(max(u, _LOG_FLOOR))

    def cumulative(k: float) -> float:
        total = h_const * k
        if latent_multiplier > 1.0 and break_hazard > 0.0:
            extra_rate = break_hazard * (latent_multiplier - 1.0)
            total += extra_rate * latent_tau * (
                math.exp(-start_age / latent_tau)
                - math.exp(-(start_age + k) / latent_tau)
            )
        return total

    if cumulative(n) < target:
        return None
    lo, hi = 0.0, float(n)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if cumulative(mid) < target:
            lo = mid
        else:
            hi = mid
    return min(int(hi), n - 1)


__all__ = [
    "TRANSFER_COMPLETED",
    "TRANSFER_LOSS",
    "TRANSFER_MISMATCH",
    "PAYLOAD_OK",
    "PAYLOAD_RETRANSMITTED",
    "PAYLOAD_DROPPED",
    "PAYLOAD_MISMATCH",
    "PAYLOAD_OUTCOME_CODES",
    "bulk_state_occupancy",
    "bulk_payload_outcomes",
    "bulk_retransmission_counts",
    "bulk_transfer_outcomes",
    "latent_break_index",
]

"""Host operating-system glue: hotplug/HAL and IP sockets.

Two OS services participate in the PAN data path:

* the **hotplug/HAL machinery**, which notices the new ``bnep0`` device
  and configures it.  The time it needs (T_H) is not synchronised with
  the PAN-connect API returning — the race behind "Bind failed".  On
  hosts with the problematic HAL version (Azzurro's Fedora Core, and
  the Windows box), T_H is heavy-tailed.
* the **IP socket layer**, where the workload binds a socket to the
  BNEP interface.

The host also keeps the reboot bookkeeping used by the recovery engine.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.collection.logs import SystemLog
from repro.core.failure_model import SystemFailureType
from repro.sim import Simulator, Timeout
from .bnep import BnepInterface, InterfaceState

#: T_H distribution: log-normal.  Normal hosts configure in well under a
#: second; bind-prone hosts have a fat tail reaching many seconds.
TH_MU_NORMAL = -1.8  # median ~0.17 s, tight
TH_SIGMA_NORMAL = 0.20
TH_MU_PRONE = -1.8  # same median, but a tail that reaches seconds
TH_SIGMA_PRONE = 0.36

#: Time a bind() call itself takes.
BIND_DELAY = 0.02


class SocketError(Exception):
    """The IP socket layer refused an operation."""


class HostOs:
    """Hotplug/HAL emulation and socket layer of one host."""

    def __init__(
        self,
        sim: Simulator,
        system_log: SystemLog,
        rng: random.Random,
        bind_prone: bool = False,
    ) -> None:
        self._sim = sim
        self._log = system_log
        self._rng = rng
        self.bind_prone = bind_prone
        self.reboots = 0
        self.sockets_bound = 0
        self.last_th: float = 0.0

    # -- hotplug -----------------------------------------------------------

    def sample_th(self) -> float:
        """Sample the hotplug configuration time T_H for a new interface."""
        if self.bind_prone:
            return self._rng.lognormvariate(TH_MU_PRONE, TH_SIGMA_PRONE)
        return self._rng.lognormvariate(TH_MU_NORMAL, TH_SIGMA_NORMAL)

    def configure_interface(self, interface: BnepInterface) -> float:
        """Schedule hotplug configuration of ``interface``.

        Returns the sampled T_H.  The interface flips to CONFIGURED
        after T_H, unless it was torn down in the meantime.
        """
        th = self.sample_th()
        self.last_th = th

        def complete() -> None:
            if interface.state is InterfaceState.CREATED:
                interface.state = InterfaceState.CONFIGURED

        self._sim.schedule(th, complete)
        return th

    def wait_interface_ready(self, interface: BnepInterface, poll: float = 0.05) -> Generator:
        """Wait until hotplug has configured ``interface`` (masking aid).

        This is the instrumented-hotplug notification the paper proposes
        to prevent bind failures: the application blocks until both T_C
        and T_H have elapsed instead of racing them.
        """
        while interface.state is InterfaceState.CREATED:
            yield Timeout(poll)
        return None

    # -- sockets -----------------------------------------------------------

    def bind_socket(self, interface: Optional[BnepInterface]) -> Generator:
        """Bind an IP socket to ``interface``.

        Raises :class:`SocketError` when the interface is missing or not
        configured yet (the failed bind also makes the HAL daemon's
        timeout visible in the system log).
        """
        yield Timeout(BIND_DELAY)
        if interface is None or interface.state is InterfaceState.ABSENT:
            raise SocketError("no bnep interface present")
        if not interface.bindable:
            self._log.error(SystemFailureType.HOTPLUG, "timeout")
            raise SocketError("bnep interface not configured yet")
        self.sockets_bound += 1
        return None

    # -- reboot bookkeeping ----------------------------------------------------

    def note_reboot(self) -> None:
        self.reboots += 1


__all__ = ["HostOs", "SocketError", "BIND_DELAY"]

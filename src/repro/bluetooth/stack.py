"""Per-host Bluetooth stack assembly.

One :class:`BluetoothStack` wires the transport, HCI, L2CAP, SDP, BNEP,
LMP and host-OS layers of a single device, and exposes the operations
the BlueTest workload performs: inquiry, SDP search, PAN connect, bind,
transfer (via the returned connection) and disconnect.  It also exposes
the state-clearing hooks the recovery engine (SIRAs) relies on.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.collection.logs import SystemLog
from repro.core.failure_model import UserFailureType
from repro.faults.evidence import emit_evidence
from repro.faults.injector import FaultActivation, FaultInjector, NodeTraits
from repro.sim import Simulator, Timeout
from .bnep import BnepLayer
from .channel import Channel
from .errors import InquiryScanError, NapNotFoundError, SdpSearchError, traced
from .hci import HciLayer
from .host import HostOs
from .l2cap import L2capLayer
from .lmp import LmpLayer
from .pan import NapService, PanProfile
from .sdp import SdpClient, ServiceRecord, UUID_NAP
from .transport import make_transport

#: Latency of a failing SDP transaction (connection refused / timeout).
SDP_FAILURE_LATENCY = 5.0


class BluetoothStack:
    """The complete BT protocol stack of one PANU host."""

    def __init__(
        self,
        sim: Simulator,
        traits: NodeTraits,
        system_log: SystemLog,
        injector: FaultInjector,
        rng: random.Random,
        channel: Channel,
        nap: NapService,
        neighbourhood: Optional[List[str]] = None,
        transport_kind: str = "usb",
    ) -> None:
        self.sim = sim
        self.traits = traits
        self.system_log = system_log
        self.injector = injector
        self.rng = rng
        self.channel = channel
        self.nap = nap
        self.neighbourhood = list(neighbourhood or [nap.name])
        self.transport = make_transport(transport_kind, system_log, rng)
        self.hci = HciLayer(system_log, self.transport, rng)
        self.l2cap = L2capLayer(system_log, self.hci, rng)
        self.lmp = LmpLayer(rng)
        self.sdp = SdpClient(rng)
        self.bnep = BnepLayer(system_log)
        self.host = HostOs(sim, system_log, rng, bind_prone=traits.bind_prone)
        self.pan = PanProfile(
            sim,
            traits,
            rng,
            self.hci,
            self.l2cap,
            self.bnep,
            self.lmp,
            self.host,
            injector,
            system_log,
            channel,
            nap,
        )
        self.stack_resets = 0

    # -- search phase -----------------------------------------------------------

    def inquiry(self) -> Generator:
        """Run the inquiry/scan procedure; returns discovered device names.

        Raises :class:`InquiryScanError` when the procedure terminates
        abnormally (a firmware-internal fault: the paper found no
        system-level evidence correlated with it).
        """
        activation = self.injector.draw_operation_fault("inquiry", self.traits)
        if activation is not None:
            self._manifest(activation)
            yield Timeout(self.rng.uniform(2.0, 8.0))
            raise traced(InquiryScanError(scope=activation.scope), activation.trace_id)
        discovered = yield from self.lmp.inquiry(self.neighbourhood)
        return discovered

    def sdp_search_nap(self) -> Generator:
        """SDP-search the NAP service on the access point.

        Returns the :class:`ServiceRecord`.  Raises
        :class:`SdpSearchError` when the transaction aborts, or
        :class:`NapNotFoundError` when it completes without returning
        the NAP record although the NAP publishes it.
        """
        activation = self.injector.draw_operation_fault("sdp_search", self.traits)
        if activation is not None:
            self._manifest(activation)
            yield Timeout(SDP_FAILURE_LATENCY)
            if activation.user_failure is UserFailureType.NAP_NOT_FOUND:
                raise traced(
                    NapNotFoundError(scope=activation.scope), activation.trace_id
                )
            raise traced(SdpSearchError(scope=activation.scope), activation.trace_id)
        record = yield from self.sdp.search(self.nap.sdp_server, UUID_NAP)
        if record is None:
            # The NAP always publishes its record; reaching this point
            # means the daemon genuinely lost it (not modelled today).
            activation = self.injector.activate(
                UserFailureType.NAP_NOT_FOUND, self.traits
            )
            self._manifest(activation)
            raise traced(NapNotFoundError(scope=activation.scope), activation.trace_id)
        return record

    def cached_nap_record(self) -> Optional[ServiceRecord]:
        """The cached NAP record used when the SDP flag is false."""
        return self.sdp.cached(UUID_NAP)

    # -- recovery hooks -----------------------------------------------------------

    def reset(self) -> None:
        """BT stack reset (SIRA 3): clean every layer's state."""
        self.hci.reset()
        self.l2cap.reset()
        self.bnep.reset()
        self.sdp.invalidate()
        self.transport.reset()
        self.stack_resets += 1

    def _manifest(self, activation: FaultActivation) -> None:
        emit_evidence(
            self.sim,
            activation,
            self.system_log,
            self.nap.system_log,
            self.rng,
            peer_name=self.traits.name,
        )


__all__ = ["BluetoothStack", "SDP_FAILURE_LATENCY"]

"""Host transports: how HCI traffic reaches the Bluetooth controller.

The BT host talks to the host controller over a serial channel.  The
paper's PCs use USB dongles (HCI-USB); its PDAs use on-board radios
driven through the **BlueCore Serial Protocol (BCSP)**, which multiplexes
parallel flows over one UART link and adds error checking and
retransmission.  BCSP's extra complexity is precisely why switch-role
failures concentrate on the PDAs (paper §6), so the transports are
modelled as distinct classes with real sequencing state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.collection.logs import SystemLog
from repro.core.failure_model import SystemFailureType


class Transport:
    """Base class: a serial path between BT host and host controller."""

    #: Name used in diagnostics.
    kind = "abstract"
    #: Per-command latency added by the transport (seconds).
    latency = 0.0005

    def __init__(self, system_log: SystemLog, rng: random.Random) -> None:
        self._log = system_log
        self._rng = rng
        self.commands_sent = 0

    def send_command(self) -> float:
        """Account one HCI command crossing the transport; returns latency."""
        self.commands_sent += 1
        return self.latency

    def reset(self) -> None:
        """Clear transport state (part of a BT stack reset)."""
        self.commands_sent = 0


class UsbTransport(Transport):
    """HCI over USB (the commodity-PC dongles of the testbed).

    USB delivers HCI packets over bulk/interrupt endpoints; its
    characteristic failure is the device refusing to accept a new
    address after a glitch (``error -71`` in Linux logs).
    """

    kind = "usb"
    latency = 0.0008

    def __init__(self, system_log: SystemLog, rng: random.Random) -> None:
        super().__init__(system_log, rng)
        self.address_assigned = True

    def fail_address(self) -> None:
        """Enter the 'not accepting new addresses' failure state."""
        self.address_assigned = False
        self._log.error(SystemFailureType.USB, "no_address")

    def reset(self) -> None:
        super().reset()
        self.address_assigned = True


class UartTransport(Transport):
    """Plain HCI-UART (H4): no error checking, no retransmission.

    Corruption on the wire is *not* detected at this layer — one of the
    sources of end-to-end "Data mismatch" failures.
    """

    kind = "uart"
    latency = 0.0012


class BcspLinkState:
    """BCSP link-establishment states (named as in the CSR spec)."""

    SHY = "shy"  # sends SYNC, ignores everything else
    CURIOUS = "curious"  # saw SYNC-RESP, sends CONF
    GARRULOUS = "garrulous"  # saw CONF-RESP, link usable


#: The link-establishment message vocabulary.
LE_SYNC = "sync"
LE_SYNC_RESP = "sync-resp"
LE_CONF = "conf"
LE_CONF_RESP = "conf-resp"


@dataclass
class BcspState:
    """Sliding-window sequencing state of one BCSP link."""

    next_seq: int = 0  # next sequence number to transmit (mod 8)
    expected_ack: int = 0  # next acknowledgement expected
    link_state: str = BcspLinkState.SHY
    out_of_order_events: int = 0
    missing_events: int = 0

    @property
    def link_established(self) -> bool:
        return self.link_state == BcspLinkState.GARRULOUS


class BcspTransport(Transport):
    """BlueCore Serial Protocol (the PDAs' on-board transport).

    BCSP carries parallel flows over a single UART link with windowed
    sequencing (3-bit sequence numbers), error checking and
    retransmission.  Out-of-order and missing packets are detected and
    logged — the system-level failure signature of Table 1.
    """

    kind = "bcsp"
    latency = 0.0015
    WINDOW = 4

    def __init__(self, system_log: SystemLog, rng: random.Random) -> None:
        super().__init__(system_log, rng)
        self.state = BcspState()
        self.establish_link()

    def send_command(self) -> float:
        """Send one command over the established link (advances seq)."""
        if not self.state.link_established:
            raise RuntimeError("BCSP link not established")
        self.state.next_seq = (self.state.next_seq + 1) % 8
        return super().send_command()

    def receive_sequence(self, seq: int) -> bool:
        """Process a received packet's sequence number.

        Returns True when in order; logs and counts the anomaly when
        not (out-of-order) and requests retransmission.
        """
        expected = self.state.expected_ack
        if seq == expected:
            self.state.expected_ack = (expected + 1) % 8
            return True
        self.state.out_of_order_events += 1
        self._log.error(SystemFailureType.BCSP, "out_of_order")
        return False

    def report_missing(self) -> None:
        """A retransmission timer fired: a packet went missing."""
        self.state.missing_events += 1
        self._log.error(SystemFailureType.BCSP, "missing")

    def handle_le_message(self, message: str) -> Optional[str]:
        """Process one link-establishment message; returns the reply.

        Implements the SHY -> CURIOUS -> GARRULOUS progression: a SHY
        peer answers SYNC with SYNC-RESP; receiving SYNC-RESP makes us
        CURIOUS (we send CONF); CONF is answered with CONF-RESP, whose
        reception makes the link GARRULOUS (usable).
        """
        state = self.state
        if message == LE_SYNC:
            return LE_SYNC_RESP
        if message == LE_SYNC_RESP:
            if state.link_state == BcspLinkState.SHY:
                state.link_state = BcspLinkState.CURIOUS
            return LE_CONF
        if message == LE_CONF:
            if state.link_state == BcspLinkState.SHY:
                # A CONF before our SYNC completed: peer is ahead of us.
                state.link_state = BcspLinkState.CURIOUS
            return LE_CONF_RESP
        if message == LE_CONF_RESP:
            state.link_state = BcspLinkState.GARRULOUS
            return None
        raise ValueError(f"unknown BCSP LE message: {message!r}")

    def establish_link(self) -> List[str]:
        """(Re-)run the full link-establishment handshake.

        Plays both ends of the exchange (the controller peer mirrors the
        same state machine) and returns the message trace.
        """
        self.state = BcspState()
        trace = [LE_SYNC]
        reply = self.handle_le_message(LE_SYNC)  # peer's SYNC reaches us
        while reply is not None:
            trace.append(reply)
            reply = self.handle_le_message(reply)
        if not self.state.link_established:
            raise RuntimeError("BCSP link establishment did not converge")
        return trace

    def reset(self) -> None:
        super().reset()
        self.establish_link()


def make_transport(
    kind: str, system_log: SystemLog, rng: random.Random
) -> Transport:
    """Factory: build the transport named ``kind``."""
    factories = {
        "usb": UsbTransport,
        "uart": UartTransport,
        "bcsp": BcspTransport,
    }
    try:
        return factories[kind](system_log, rng)
    except KeyError:
        raise ValueError(f"unknown transport kind: {kind!r}") from None


__all__ = [
    "Transport",
    "UsbTransport",
    "UartTransport",
    "BcspTransport",
    "BcspState",
    "make_transport",
]

"""Link Manager Protocol (LMP) procedures.

The LMP is responsible for connection establishment between BT devices
and provides the inquiry/scan procedure (paper §2).  Here it owns the
*timing* of those procedures — inquiry sweeps the 32-channel inquiry
hopping train and takes on the order of ten seconds; paging a known
device is much faster — plus the master/slave switch primitive used by
the PAN profile.
"""

from __future__ import annotations

import random
from typing import Generator, List

from repro.sim import Timeout

#: A standard inquiry lasts up to 10.24 s (4 × 1.28 s trains, repeated).
INQUIRY_DURATION_MIN = 5.12
INQUIRY_DURATION_MAX = 10.24
#: Paging a device whose clock estimate is fresh.
PAGE_DURATION_MIN = 0.08
PAGE_DURATION_MAX = 0.64
#: A master/slave role switch is a short Baseband procedure.
ROLE_SWITCH_DURATION = 0.2


class LmpLayer:
    """Inquiry, paging and role-switch procedures of one device."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.inquiries = 0
        self.pages = 0
        self.role_switches = 0

    def inquiry(self, neighbourhood: List[str]) -> Generator:
        """Run an inquiry; returns the list of discovered device names.

        Discovery of each present device is probabilistic within one
        inquiry (backoff collisions), but a NAP sitting a few metres
        away is found essentially always.
        """
        self.inquiries += 1
        duration = self._rng.uniform(INQUIRY_DURATION_MIN, INQUIRY_DURATION_MAX)
        yield Timeout(duration)
        discovered = [name for name in neighbourhood if self._rng.random() < 0.98]
        return discovered

    def begin_page(self) -> float:
        """Account one page procedure; returns its drawn duration.

        Non-waiting half of :meth:`page`, for callers that chain the
        page delay into a single combined wait.
        """
        self.pages += 1
        return self._rng.uniform(PAGE_DURATION_MIN, PAGE_DURATION_MAX)

    def page(self) -> Generator:
        """Page (baseband-connect) a known device; returns the delay used."""
        duration = self.begin_page()
        yield Timeout(duration)
        return duration

    def role_switch(self) -> Generator:
        """Perform the master/slave switch Baseband procedure."""
        self.role_switches += 1
        yield Timeout(ROLE_SWITCH_DURATION)
        return None


__all__ = [
    "LmpLayer",
    "INQUIRY_DURATION_MIN",
    "INQUIRY_DURATION_MAX",
    "PAGE_DURATION_MIN",
    "PAGE_DURATION_MAX",
    "ROLE_SWITCH_DURATION",
]

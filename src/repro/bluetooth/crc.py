"""CRC-16 as used by the Bluetooth Baseband payload check.

Bluetooth uses the CRC-CCITT generator polynomial ``x^16 + x^12 + x^5 + 1``
(0x1021), initialised from the master's UAP (upper address part) padded
with zeros.  The CRC is 16 bits regardless of payload size (1 to 5 slots),
which is exactly the weakness the paper points at: on a bursty channel the
probability of an undetected error ("Data mismatch") is non-negligible.
"""

from __future__ import annotations

from typing import List

_POLY = 0x1021


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def crc16(data: bytes, init: int = 0x0000) -> int:
    """Compute the Baseband CRC-16 over ``data``.

    ``init`` is the initial register value (the UAP byte padded with
    zeros in real Baseband; tests use 0).
    """
    crc = init & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def append_crc(data: bytes, init: int = 0x0000) -> bytes:
    """Return ``data`` with its 16-bit CRC appended big-endian."""
    return data + crc16(data, init).to_bytes(2, "big")


def check_crc(frame: bytes, init: int = 0x0000) -> bool:
    """Verify a frame produced by :func:`append_crc`."""
    if len(frame) < 2:
        return False
    return crc16(frame[:-2], init) == int.from_bytes(frame[-2:], "big")


def undetected_error_probability(bit_error_count: int) -> float:
    """Approximate probability that a corrupted payload passes the CRC.

    For a random error pattern of weight >= 1, a 16-bit CRC misses about
    2^-16 of patterns.  Error bursts no longer than 16 bits are always
    caught; longer bursts are caught with probability ~1 - 2^-16.  This
    is the standard approximation used when modelling undetected errors
    (cf. Paulitsch et al., DSN 2005, cited by the paper).
    """
    if bit_error_count <= 0:
        return 0.0
    return 2.0 ** -16


__all__ = ["crc16", "append_crc", "check_crc", "undetected_error_probability"]

"""Forward error correction codes of the Bluetooth Baseband.

Two codes exist in the Baseband:

* **Rate 1/3** — each header bit repeated three times; majority decoding.
  Used for the 18-bit packet header of every packet.
* **Rate 2/3** — a (15, 10) shortened Hamming code: every block of 10
  information bits is encoded into 15 bits.  It corrects all single bit
  errors and detects all double errors in each block.  Used for the
  payload of DM1/DM3/DM5 packets.

The generator polynomial of the (15,10) code is
``g(D) = (D + 1)(D^4 + D + 1) = D^5 + D^4 + D^2 + 1`` (0b110101), per the
Bluetooth core specification v1.1 — the version the paper's devices run.
"""

from __future__ import annotations

from typing import List, Tuple

_GEN = 0b110101  # g(D) = D^5 + D^4 + D^2 + 1
_PARITY_BITS = 5
_INFO_BITS = 10
_BLOCK_BITS = _INFO_BITS + _PARITY_BITS


def _poly_mod(value: int, width: int) -> int:
    """Remainder of ``value`` (a bit-polynomial) modulo the generator."""
    for shift in range(width - 1, _PARITY_BITS - 1, -1):
        if value & (1 << shift):
            value ^= _GEN << (shift - _PARITY_BITS)
    return value


def encode_block(info: int) -> int:
    """Encode 10 information bits into a 15-bit systematic codeword."""
    if not 0 <= info < (1 << _INFO_BITS):
        raise ValueError(f"info word out of range: {info}")
    shifted = info << _PARITY_BITS
    parity = _poly_mod(shifted, _BLOCK_BITS)
    return shifted | parity


def _build_syndrome_table() -> dict:
    """Map syndrome -> single-bit error position (0 = LSB of codeword)."""
    table = {}
    for pos in range(_BLOCK_BITS):
        err = 1 << pos
        syndrome = _poly_mod(err, _BLOCK_BITS)
        table[syndrome] = pos
    return table


_SYNDROMES = _build_syndrome_table()


def decode_block(codeword: int) -> Tuple[int, bool]:
    """Decode a 15-bit codeword.

    Returns ``(info, ok)``.  Single-bit errors are corrected
    transparently.  Multi-bit errors either produce an unknown syndrome
    (``ok=False``) or are *miscorrected* into a wrong but valid word —
    exactly the behaviour that lets correlated bursts defeat the FEC, as
    the paper observes for "Data mismatch" failures.
    """
    if not 0 <= codeword < (1 << _BLOCK_BITS):
        raise ValueError(f"codeword out of range: {codeword}")
    syndrome = _poly_mod(codeword, _BLOCK_BITS)
    if syndrome == 0:
        return codeword >> _PARITY_BITS, True
    pos = _SYNDROMES.get(syndrome)
    if pos is None:
        # Detected but uncorrectable error pattern.
        return codeword >> _PARITY_BITS, False
    corrected = codeword ^ (1 << pos)
    return corrected >> _PARITY_BITS, True


def bits_from_bytes(data: bytes) -> List[int]:
    """Explode bytes into a list of bits, MSB first."""
    bits = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bytes_from_bits(bits: List[int]) -> bytes:
    """Pack a bit list (MSB first) back into bytes; pads the tail with 0."""
    out = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        chunk = bits[start : start + 8]
        for bit in chunk:
            byte = (byte << 1) | (bit & 1)
        byte <<= 8 - len(chunk)
        out.append(byte)
    return bytes(out)


def encode_rate23(data: bytes) -> List[int]:
    """Encode a byte payload with the (15,10) code.

    Returns the list of 15-bit codewords.  The final block is
    zero-padded, as the Baseband does.
    """
    bits = bits_from_bytes(data)
    while len(bits) % _INFO_BITS:
        bits.append(0)
    blocks = []
    for start in range(0, len(bits), _INFO_BITS):
        info = 0
        for bit in bits[start : start + _INFO_BITS]:
            info = (info << 1) | bit
        blocks.append(encode_block(info))
    return blocks


def decode_rate23(blocks: List[int], payload_len: int) -> Tuple[bytes, bool]:
    """Decode codeword blocks back to ``payload_len`` bytes.

    Returns ``(payload, ok)`` where ``ok`` is False if any block had a
    detected-uncorrectable error.
    """
    bits: List[int] = []
    ok = True
    for block in blocks:
        info, block_ok = decode_block(block)
        ok = ok and block_ok
        for shift in range(_INFO_BITS - 1, -1, -1):
            bits.append((info >> shift) & 1)
    return bytes_from_bits(bits)[:payload_len], ok


def encode_rate13(bits: List[int]) -> List[int]:
    """Rate-1/3 repetition encode (header FEC)."""
    out: List[int] = []
    for bit in bits:
        out.extend((bit, bit, bit))
    return out


def decode_rate13(coded: List[int]) -> List[int]:
    """Majority-vote decode of a rate-1/3 stream."""
    if len(coded) % 3:
        raise ValueError("rate-1/3 stream length must be a multiple of 3")
    out = []
    for start in range(0, len(coded), 3):
        triple = coded[start : start + 3]
        out.append(1 if sum(triple) >= 2 else 0)
    return out


BLOCK_BITS = _BLOCK_BITS
INFO_BITS = _INFO_BITS

__all__ = [
    "encode_block",
    "decode_block",
    "encode_rate23",
    "decode_rate23",
    "encode_rate13",
    "decode_rate13",
    "bits_from_bytes",
    "bytes_from_bits",
    "BLOCK_BITS",
    "INFO_BITS",
]

"""The PAN profile: NAP, PANU, piconet and the PAN connection.

The PAN profile provides IP networking over Bluetooth: a PAN User
(PANU) connects to a Network Access Point (NAP) by opening an L2CAP
channel on the BNEP PSM, adding a BNEP connection (which materialises
the ``bnep0`` interface), and then performing the master/slave switch —
the PANU initiated the connection and is therefore master, but the NAP
must end up master of the piconet to serve up to seven PANUs (paper §2).

Every step can fail in its own way, and each failure mode is one row of
the failure model: Connect failed, PAN connect failed, Switch role
request/command failed, and during data transfer Packet loss and Data
mismatch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, Set

from repro.collection.logs import SystemLog
from repro.core.failure_model import UserFailureType
from repro.faults.calibration import APPLICATION_HAZARD_MULTIPLIERS
from repro.faults.evidence import emit_evidence
from repro.faults.injector import FaultActivation, FaultInjector, NodeTraits, TransferHazards
from repro.obs.trace import get_tracer
from repro.sim import Simulator, SleepUntil, Timeout
from .baseband import TransferStatus, sample_transfer
from .bnep import BnepError, BnepLayer
from .channel import Channel
from .errors import (
    PACKET_LOSS_TIMEOUT,
    BindError,
    BTError,
    ConnectError,
    DataMismatchError,
    PacketLossError,
    PanConnectError,
    SwitchRoleCommandError,
    SwitchRoleRequestError,
    traced,
)
from .hci import HciCommandError, HciLayer, COMMAND_TIMEOUT
from .l2cap import L2capLayer, PSM_BNEP, SIGNALLING_DELAY
from .lmp import LmpLayer, ROLE_SWITCH_DURATION
from .host import HostOs, SocketError
from .packets import PacketType, packets_needed
from .sdp import SdpServer, make_nap_record


def _trace_stack_chain(activation: FaultActivation, events) -> None:
    """Record how a transfer fault crossed the stack, one event per layer.

    ``events`` is a sequence of ``(layer, what, attrs)`` triples ordered
    bottom-up (channel first) — the propagation path the trace exporter
    later reconstructs from the span.
    """
    tracer = get_tracer()
    if not (tracer.enabled and activation.trace_id):
        return
    for layer, what, attrs in events:
        tracer.event(activation.trace_id, layer=layer, what=what, **attrs)


class Piconet:
    """One piconet: a master and up to seven active slaves."""

    MAX_SLAVES = 7

    def __init__(self, master: str) -> None:
        self.master = master
        self.slaves: Set[str] = set()
        self.connecting = 0  # connection attempts currently in progress
        self.active_transfers = 0  # slaves currently moving data

    @property
    def busy(self) -> bool:
        """True when the master is servicing a connection attempt or full."""
        return self.connecting > 0 or len(self.slaves) >= self.MAX_SLAVES

    # -- TDD slot sharing ------------------------------------------------------

    def begin_transfer(self) -> None:
        self.active_transfers += 1

    def end_transfer(self) -> None:
        self.active_transfers = max(0, self.active_transfers - 1)

    @property
    def slot_share_factor(self) -> float:
        """Air-time dilation seen by one transferring slave.

        The master polls active slaves round-robin, so n concurrent
        transfers each progress at ~1/n of the channel rate.
        """
        return float(max(1, self.active_transfers))

    def begin_connect(self) -> None:
        self.connecting += 1

    def end_connect(self) -> None:
        self.connecting = max(0, self.connecting - 1)

    def add_slave(self, name: str) -> None:
        """Register an active slave; idempotent, enforces the 7-slave cap."""
        if name in self.slaves:
            return  # already an active member
        if len(self.slaves) >= self.MAX_SLAVES:
            raise BTError(f"piconet full: cannot add {name}")
        self.slaves.add(name)

    def remove_slave(self, name: str) -> None:
        self.slaves.discard(name)


class NapService:
    """The Network Access Point side: SDP record, piconet, system log."""

    def __init__(self, name: str, system_log: SystemLog) -> None:
        self.name = name
        self.system_log = system_log
        self.sdp_server = SdpServer(name)
        self.sdp_server.register(make_nap_record(name))
        self.piconet = Piconet(master=name)
        self.connections_accepted = 0


@dataclass
class PanConnection:
    """An established PANU-NAP PAN connection."""

    owner: "PanProfile"
    nap: NapService
    hci_handle: int
    cid: int
    interface_name: str
    created_at: float
    hazards: TransferHazards
    packets_total: int = 0  # cumulative baseband payloads (connection age)
    cycles_used: int = 0
    broken: bool = False

    @property
    def alive(self) -> bool:
        return not self.broken and self.owner.hci.valid_handle(self.hci_handle)

    def transfer(
        self,
        packet_type: PacketType,
        n_logical: int,
        send_size: int,
        recv_size: int,
        application: str = "random",
    ) -> Generator:
        """Exchange ``n_logical`` logical packets with the BlueTest server.

        Each logical packet is ``send_size`` bytes out and ``recv_size``
        bytes back, segmented into baseband payloads of ``packet_type``.
        ``application`` names the emulated traffic source, whose usage
        pattern scales the broken-link hazard (paper fig. 3c).  Raises
        :class:`PacketLossError` (after the 30 s detection timeout) or
        :class:`DataMismatchError`.
        """
        owner = self.owner
        hazards = self.hazards
        per_logical = packets_needed(send_size, packet_type) + packets_needed(
            recv_size, packet_type
        )
        n_payloads = max(1, n_logical) * per_logical
        app_multiplier = APPLICATION_HAZARD_MULTIPLIERS.get(application, 1.0)
        outcome = sample_transfer(
            owner.rng,
            owner.channel,
            packet_type,
            n_payloads,
            break_hazard=hazards.break_hazard * app_multiplier,
            mismatch_hazard=hazards.mismatch_hazard,
            latent_multiplier=(
                hazards.latent_multiplier if hazards.latent_defect else 1.0
            ),
            latent_tau=hazards.latent_packets,
            start_age=float(self.packets_total),
        )
        age_at_event = self.packets_total + outcome.payloads_before_event
        self.packets_total = age_at_event
        # The piconet's TDD scheme divides air time among concurrent
        # transfers: with n slaves moving data, each sees ~n-fold
        # dilation (snapshot at transfer start; begin/end_transfer
        # inlined — this runs once per cycle).
        piconet = self.nap.piconet
        piconet.active_transfers += 1
        dilation = float(max(1, piconet.active_transfers))
        try:
            if outcome.status is TransferStatus.COMPLETED:
                yield Timeout(outcome.duration * dilation)
                return None
            if outcome.status is TransferStatus.MISMATCH:
                yield Timeout(outcome.duration * dilation)
                activation = owner.injector.activate(
                    UserFailureType.DATA_MISMATCH, owner.traits
                )
                _trace_stack_chain(
                    activation,
                    [
                        ("channel", "bit_errors", {"packet_type": packet_type.value}),
                        ("baseband", "crc_escape", {}),
                        ("l2cap", "sdu_corrupted", {"cid": self.cid}),
                        ("bnep", "frame_delivered_corrupt", {"interface": self.interface_name}),
                    ],
                )
                owner.manifest(activation)  # no evidence in practice
                raise traced(
                    DataMismatchError(scope=activation.scope), activation.trace_id
                )
            # Packet loss: the link broke; the workload notices after the
            # 30 s receive timeout.  The connection length reported is in
            # *logical* (workload-level) packets, as in figure 3b.
            self.broken = True
            yield Timeout(outcome.duration * dilation + PACKET_LOSS_TIMEOUT)
            activation = owner.injector.activate(
                UserFailureType.PACKET_LOSS, owner.traits
            )
            _trace_stack_chain(
                activation,
                [
                    ("channel", "error_burst", {"packet_type": packet_type.value}),
                    ("baseband", "arq_exhausted", {"payloads_sent": outcome.payloads_before_event}),
                    ("l2cap", "delivery_stalled", {"cid": self.cid}),
                    ("bnep", "link_down", {"interface": self.interface_name}),
                ],
            )
            owner.manifest(activation)
            raise traced(
                PacketLossError(
                    scope=activation.scope, packets_sent=age_at_event // per_logical
                ),
                activation.trace_id,
            )
        finally:
            piconet.active_transfers = max(0, piconet.active_transfers - 1)

    def disconnect(self) -> Generator:
        """Tear the PAN connection down (idempotent, tolerant of breakage)."""
        self.nap.piconet.remove_slave(self.owner.traits.name)
        self.owner.bnep.remove_connection()
        try:
            yield from self.owner.l2cap.disconnect(self.cid)
        except HciCommandError:
            pass  # stale handle after a link break; nothing more to do
        self.owner.hci.close_connection(self.hci_handle)
        self.broken = True
        return None

    def force_close(self) -> None:
        """Instantaneous state-only teardown used by recovery actions."""
        self.nap.piconet.remove_slave(self.owner.traits.name)
        self.owner.bnep.remove_connection()
        self.owner.l2cap.channels.pop(self.cid, None)
        self.owner.hci.close_connection(self.hci_handle)
        self.broken = True


class PanProfile:
    """PANU-side PAN profile engine for one host."""

    def __init__(
        self,
        sim: Simulator,
        traits: NodeTraits,
        rng: random.Random,
        hci: HciLayer,
        l2cap: L2capLayer,
        bnep: BnepLayer,
        lmp: LmpLayer,
        host: HostOs,
        injector: FaultInjector,
        system_log: SystemLog,
        channel: Channel,
        nap: NapService,
    ) -> None:
        self.sim = sim
        self.traits = traits
        self.rng = rng
        self.hci = hci
        self.l2cap = l2cap
        self.bnep = bnep
        self.lmp = lmp
        self.host = host
        self.injector = injector
        self.system_log = system_log
        self.channel = channel
        self.nap = nap
        self.connections_made = 0

    # -- fault plumbing ------------------------------------------------------

    def manifest(self, activation: FaultActivation) -> None:
        """Emit the system-level evidence of an activated fault."""
        emit_evidence(
            self.sim,
            activation,
            self.system_log,
            self.nap.system_log,
            self.rng,
            peer_name=self.traits.name,
        )

    def _draw(
        self,
        operation: str,
        sdp_performed: bool = True,
        busy: Optional[bool] = None,
    ) -> Optional[FaultActivation]:
        if busy is None:
            busy = self.nap.piconet.busy
        return self.injector.draw_operation_fault(
            operation,
            self.traits,
            busy=busy,
            sdp_performed=sdp_performed,
        )

    # -- connection establishment ---------------------------------------------

    def connect(self, sdp_performed: bool = True) -> Generator:
        """Establish a PAN connection with the NAP.

        Follows the profile's sequence: page + L2CAP connect on the BNEP
        PSM, BNEP connection add (interface creation + async hotplug
        configuration), switch-role request, switch-role command.
        Returns a :class:`PanConnection`.
        """
        piconet = self.nap.piconet
        # Whether the NAP is busy is judged before our own attempt is
        # registered — a device is busy because of *other* traffic.
        busy_before = piconet.busy
        piconet.begin_connect()
        try:
            # --- L2CAP connection (T_C) -------------------------------------
            activation = self._draw("l2cap_connect", busy=busy_before)
            if activation is not None:
                self.manifest(activation)
                yield Timeout(COMMAND_TIMEOUT)  # HCI command timeout latency
                raise traced(ConnectError(scope=activation.scope), activation.trace_id)
            # Page, HCI connect command and L2CAP signalling are three
            # consecutive waits with only node-local bookkeeping between
            # them, so they are chained into a single wake-up.  The
            # deadline accumulates one delay at a time — the same float
            # additions the individual waits would have performed — so
            # the final instant is bit-identical to the step-by-step
            # schedule while costing one event instead of three.
            hci = self.hci
            deadline = self.sim.now
            deadline += self.lmp.begin_page()
            hci_conn = hci.open_connection(self.nap.name)
            deadline += hci.begin_command(hci_conn.handle)
            deadline += SIGNALLING_DELAY
            yield SleepUntil(deadline)
            hci.end_command()
            channel = self.l2cap.open_channel(PSM_BNEP, hci_conn.handle, self.nap.name)
            hci.complete_connection(hci_conn.handle)

            # --- BNEP / PAN establishment ------------------------------------
            activation = self._draw("pan_connect", sdp_performed=sdp_performed)
            if activation is not None:
                self.manifest(activation)
                yield Timeout(2.0)
                self.hci.close_connection(hci_conn.handle)
                raise traced(PanConnectError(scope=activation.scope), activation.trace_id)
            try:
                interface = self.bnep.add_connection(channel)
            except BnepError as exc:
                activation = self.injector.activate(
                    UserFailureType.PAN_CONNECT_FAILED, self.traits, detail=str(exc)
                )
                self.manifest(activation)
                self.hci.close_connection(hci_conn.handle)
                raise traced(
                    PanConnectError(str(exc), scope=activation.scope),
                    activation.trace_id,
                ) from exc
            self.host.configure_interface(interface)  # T_H runs asynchronously

            # --- master/slave switch ------------------------------------------
            activation = self._draw("sw_role_request")
            if activation is not None:
                self.manifest(activation)
                yield Timeout(COMMAND_TIMEOUT)
                self._abort_connection(hci_conn.handle)
                raise traced(
                    SwitchRoleRequestError(scope=activation.scope), activation.trace_id
                )
            activation = self._draw("sw_role_command")
            if activation is not None:
                self.manifest(activation)
                yield from self.lmp.role_switch()
                self._abort_connection(hci_conn.handle)
                raise traced(
                    SwitchRoleCommandError(scope=activation.scope), activation.trace_id
                )
            # lmp.role_switch() inlined: same counter, same wait, one
            # generator frame less on the per-connect hot path.
            self.lmp.role_switches += 1
            yield Timeout(ROLE_SWITCH_DURATION)

            piconet.add_slave(self.traits.name)
            self.nap.connections_accepted += 1
            self.connections_made += 1
            return PanConnection(
                owner=self,
                nap=self.nap,
                hci_handle=hci_conn.handle,
                cid=channel.cid,
                interface_name=interface.name,
                created_at=self.sim.now,
                hazards=self.injector.transfer_hazards(self.traits, "random"),
            )
        finally:
            piconet.end_connect()

    def _abort_connection(self, handle: int) -> None:
        """Best-effort cleanup after a mid-establishment failure."""
        self.bnep.remove_connection()
        self.hci.close_connection(handle)

    # -- socket binding ---------------------------------------------------------

    def bind(self, connection: PanConnection, wait_ready: bool = False) -> Generator:
        """Bind an IP socket on the connection's BNEP interface.

        ``wait_ready=True`` applies the paper's masking strategy: wait
        for T_C (valid L2CAP handle) and T_H (configured interface)
        before binding, which prevents the failure entirely.
        """
        interface = self.bnep.interface
        if wait_ready and interface is not None:
            yield from self.host.wait_interface_ready(interface)
        activation = self._draw("bind")
        if activation is not None:
            self.manifest(activation)
            yield Timeout(0.5)
            raise traced(BindError(scope=activation.scope), activation.trace_id)
        try:
            yield from self.host.bind_socket(interface)
        except SocketError as exc:
            activation = self.injector.activate(
                UserFailureType.BIND_FAILED, self.traits, detail=str(exc)
            )
            self.manifest(activation)
            raise traced(
                BindError(str(exc), scope=activation.scope), activation.trace_id
            ) from exc
        return None


__all__ = ["Piconet", "NapService", "PanConnection", "PanProfile"]

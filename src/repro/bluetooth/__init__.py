"""From-scratch simulated Bluetooth protocol stack (v1.1-era, PAN profile)."""

from .packets import (
    AclPacket,
    PACKET_SPECS,
    PACKET_TYPE_ORDER,
    PacketType,
    effective_throughput,
    packets_needed,
    segment,
)
from .channel import (
    Channel,
    ChannelConfig,
    LossProfile,
    PathLoss,
    TransferStatistics,
    sample_first_drop,
)
from .baseband import Baseband, TransferStatus, TxStatus, sample_transfer
from .errors import (
    BTError,
    BindError,
    ConnectError,
    DataMismatchError,
    InquiryScanError,
    NapNotFoundError,
    PacketLossError,
    PanConnectError,
    SdpSearchError,
    SwitchRoleCommandError,
    SwitchRoleRequestError,
    PACKET_LOSS_TIMEOUT,
)
from .hci import HciLayer
from .l2cap import L2capLayer, PSM_BNEP, PSM_SDP
from .lmp import LmpLayer
from .sdp import SdpClient, SdpServer, ServiceRecord, UUID_NAP, make_nap_record
from .bnep import BNEP_MTU, BnepLayer
from .host import HostOs
from .pan import NapService, PanConnection, PanProfile, Piconet
from .stack import BluetoothStack
from .transport import BcspTransport, UartTransport, UsbTransport, make_transport

__all__ = [
    "AclPacket",
    "PacketType",
    "PACKET_SPECS",
    "PACKET_TYPE_ORDER",
    "segment",
    "packets_needed",
    "effective_throughput",
    "Channel",
    "ChannelConfig",
    "LossProfile",
    "PathLoss",
    "TransferStatistics",
    "sample_first_drop",
    "Baseband",
    "TxStatus",
    "TransferStatus",
    "sample_transfer",
    "BTError",
    "InquiryScanError",
    "SdpSearchError",
    "NapNotFoundError",
    "ConnectError",
    "PanConnectError",
    "BindError",
    "SwitchRoleRequestError",
    "SwitchRoleCommandError",
    "PacketLossError",
    "DataMismatchError",
    "PACKET_LOSS_TIMEOUT",
    "HciLayer",
    "L2capLayer",
    "PSM_SDP",
    "PSM_BNEP",
    "LmpLayer",
    "SdpClient",
    "SdpServer",
    "ServiceRecord",
    "UUID_NAP",
    "make_nap_record",
    "BnepLayer",
    "BNEP_MTU",
    "HostOs",
    "Piconet",
    "NapService",
    "PanConnection",
    "PanProfile",
    "BluetoothStack",
    "BcspTransport",
    "UartTransport",
    "UsbTransport",
    "make_transport",
]

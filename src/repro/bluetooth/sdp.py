"""Service Discovery Protocol (SDP).

A device publishes *service records*; peers search them by UUID over an
L2CAP channel on PSM 0x0001.  The NAP publishes the PAN Network Access
Point service; PANUs search for it before connecting (unless they rely
on a cached copy — the usage pattern the paper singles out as the main
source of PAN-connect failures).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.sim import Timeout

#: UUIDs of the PAN profile services (Bluetooth assigned numbers).
UUID_NAP = 0x1116
UUID_PANU = 0x1115
UUID_GN = 0x1117

#: An SDP transaction takes a connect + search round-trip.
SEARCH_DELAY_MIN = 0.3
SEARCH_DELAY_MAX = 1.8


@dataclass(frozen=True)
class ServiceRecord:
    """One SDP service record."""

    uuid: int
    name: str
    provider: str
    psm: int
    version: int = 0x0100


class SdpServer:
    """The SDP daemon of one host (the NAP runs the interesting one)."""

    def __init__(self, provider: str) -> None:
        self.provider = provider
        self._records: Dict[int, ServiceRecord] = {}
        self.searches_served = 0

    def register(self, record: ServiceRecord) -> None:
        self._records[record.uuid] = record

    def unregister(self, uuid: int) -> None:
        self._records.pop(uuid, None)

    def lookup(self, uuid: int) -> Optional[ServiceRecord]:
        self.searches_served += 1
        return self._records.get(uuid)

    def records(self) -> List[ServiceRecord]:
        return list(self._records.values())


class SdpClient:
    """SDP search client with the record cache real applications keep."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._cache: Dict[int, ServiceRecord] = {}
        self.searches = 0
        self.cache_hits = 0

    def search(self, server: SdpServer, uuid: int) -> Generator:
        """Run an SDP Search transaction against ``server``.

        Returns the :class:`ServiceRecord` or ``None`` when the service
        is not found.  The result is cached for later cycles that skip
        the search (SDP flag false).
        """
        self.searches += 1
        yield Timeout(self._rng.uniform(SEARCH_DELAY_MIN, SEARCH_DELAY_MAX))
        record = server.lookup(uuid)
        if record is not None:
            self._cache[uuid] = record
        return record

    def cached(self, uuid: int) -> Optional[ServiceRecord]:
        """Return the cached record for ``uuid``, if any (no time cost)."""
        record = self._cache.get(uuid)
        if record is not None:
            self.cache_hits += 1
        return record

    def invalidate(self) -> None:
        """Drop the cache (part of application restart / stack reset)."""
        self._cache.clear()


def make_nap_record(provider: str) -> ServiceRecord:
    """The service record a NAP publishes."""
    from .l2cap import PSM_BNEP

    return ServiceRecord(
        uuid=UUID_NAP, name="Network Access Point", provider=provider, psm=PSM_BNEP
    )


__all__ = [
    "SdpServer",
    "SdpClient",
    "ServiceRecord",
    "make_nap_record",
    "UUID_NAP",
    "UUID_PANU",
    "UUID_GN",
    "SEARCH_DELAY_MIN",
    "SEARCH_DELAY_MAX",
]

"""Baseband layer: framing, FEC/CRC, ARQ, and the transfer models.

Two execution paths are provided:

* **Bit-accurate** (:class:`Baseband`) — real framing: the payload gets
  its CRC-16, DMx payloads are (15,10)-FEC encoded, the 18-bit header is
  rate-1/3 protected, bit errors are sampled from the channel and
  decoded back.  ARQ retransmits integrity failures up to the limit, at
  which point the payload is *dropped and the next payload considered*
  (the Bluetooth flush behaviour the paper quotes to explain packet
  losses).  Used by unit tests, examples, and short experiments.
* **Batch-analytic** (:func:`sample_transfer`) — closed-form sampling of
  the fate of an n-payload transfer, including the connection-age
  dependent break hazard (young connections fail more, fig. 3b).  Used
  by campaign simulations.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.obs.instruments import stack_instruments
from . import crc as crc_mod
from . import fec as fec_mod
from .channel import Channel
from .packets import AclPacket, HEADER_BITS, PacketType


class TxStatus(enum.Enum):
    """Fate of one baseband payload after ARQ."""

    DELIVERED = "delivered"
    DELIVERED_CORRUPTED = "delivered_corrupted"  # CRC escape: data mismatch
    DROPPED = "dropped"  # retransmit limit exhausted: packet loss


@dataclass
class TxOutcome:
    status: TxStatus
    attempts: int
    payload: bytes  # payload as delivered (may differ when corrupted)


class Baseband:
    """Bit-accurate Baseband transmitter over one channel."""

    def __init__(self, channel: Channel, rng: random.Random) -> None:
        self._channel = channel
        self._rng = rng
        self._obs = stack_instruments()
        self.payloads_sent = 0
        self.retransmissions = 0
        self.drops = 0

    def transmit(self, packet: AclPacket, now: float) -> TxOutcome:
        """Send one packet with ARQ; advances no simulated clock itself.

        The caller accounts air time via ``packet.duration`` per attempt.
        """
        limit = self._channel.config.retransmit_limit
        self._obs.baseband_slots.observe(packet.type.spec.slots)
        attempt_time = now
        for attempt in range(1, limit + 2):
            delivered, payload = self._attempt(packet, attempt_time)
            if delivered:
                self.payloads_sent += 1
                self._obs.baseband_payloads.inc()
                if payload == packet.payload:
                    return TxOutcome(TxStatus.DELIVERED, attempt, payload)
                return TxOutcome(TxStatus.DELIVERED_CORRUPTED, attempt, payload)
            self.retransmissions += 1
            self._obs.baseband_retransmissions.inc()
            attempt_time += packet.duration
        self.drops += 1
        self._obs.baseband_drops.inc()
        return TxOutcome(TxStatus.DROPPED, limit + 1, b"")

    def _attempt(self, packet: AclPacket, now: float) -> "tuple[bool, bytes]":
        """One transmission attempt: returns (accepted, payload_as_received)."""
        # -- header: 18 bits, rate-1/3 FEC, majority decode ------------------
        header_bits = [self._rng.getrandbits(1) for _ in range(HEADER_BITS)]
        coded_header = fec_mod.encode_rate13(header_bits)
        errored_header, _ = self._flip_bits(coded_header, now)
        if fec_mod.decode_rate13(errored_header) != header_bits:
            return False, b""  # header CRC (HEC) failure -> no reception
        # -- payload ---------------------------------------------------------
        frame = crc_mod.append_crc(packet.payload)
        if packet.type.fec:
            blocks = fec_mod.encode_rate23(frame)
            errored, n_errors = self._flip_block_bits(blocks, now)
            decoded, _ = fec_mod.decode_rate23(errored, len(frame))
        else:
            bits = fec_mod.bits_from_bytes(frame)
            errored_bits, n_errors = self._flip_bits(bits, now)
            decoded = fec_mod.bytes_from_bits(errored_bits)[: len(frame)]
        if not crc_mod.check_crc(decoded):
            return False, b""  # detected corruption -> NAK/retransmit
        if n_errors and packet.type.fec and decoded[:-2] == packet.payload:
            # Errors hit the coded payload yet the CRC passed on the
            # original data: the (15,10) FEC corrected them.
            self._obs.baseband_fec_corrections.inc(n_errors)
        return True, decoded[:-2]

    def _flip_bits(self, bits: List[int], now: float) -> "tuple[List[int], int]":
        n_errors = self._channel.sample_packet_errors(now, len(bits))
        if n_errors == 0:
            return bits, 0
        flipped = list(bits)
        for _ in range(min(n_errors, len(bits))):
            pos = self._rng.randrange(len(bits))
            flipped[pos] ^= 1
        return flipped, n_errors

    def _flip_block_bits(self, blocks: List[int], now: float) -> "tuple[List[int], int]":
        total_bits = len(blocks) * fec_mod.BLOCK_BITS
        n_errors = self._channel.sample_packet_errors(now, total_bits)
        if n_errors == 0:
            return blocks, 0
        flipped = list(blocks)
        for _ in range(min(n_errors, total_bits)):
            pos = self._rng.randrange(total_bits)
            block, bit = divmod(pos, fec_mod.BLOCK_BITS)
            flipped[block] ^= 1 << bit
        return flipped, n_errors


# ---------------------------------------------------------------------------
# Batch-analytic transfer model
# ---------------------------------------------------------------------------


class TransferStatus(enum.Enum):
    """Fate of a whole batch transfer."""

    COMPLETED = "completed"
    LOSS = "loss"  # a payload was dropped -> user-visible packet loss
    MISMATCH = "mismatch"  # corrupted data delivered as good

    code: str  # == .value, cached below for the per-transfer obs call


for _status in TransferStatus:
    _status.code = _status._value_
del _status


@dataclass(frozen=True)
class TransferOutcome:
    """Sampled fate of an n-payload batch transfer."""

    __slots__ = ("status", "payloads_before_event", "duration")

    status: TransferStatus
    payloads_before_event: int  # baseband payloads exchanged before the event
    duration: float  # air time consumed (seconds)


def sample_transfer(
    rng: random.Random,
    channel: Channel,
    packet_type: PacketType,
    n_payloads: int,
    break_hazard: float = 0.0,
    mismatch_hazard: float = 0.0,
    latent_multiplier: float = 1.0,
    latent_tau: float = 1.0,
    start_age: float = 0.0,
) -> TransferOutcome:
    """Sample the outcome of transferring ``n_payloads`` baseband payloads.

    The per-payload break hazard is the sum of the channel's ARQ-drop
    probability, the injected broken-link hazard, and — when the
    connection carries a latent setup defect (``latent_multiplier > 1``)
    — an exponentially decaying infant-mortality component in the
    connection's age measured in payloads (``start_age`` payloads were
    already exchanged on this connection before this batch).
    """
    obs = stack_instruments()
    if n_payloads <= 0:
        obs.transfer_outcome(TransferStatus.COMPLETED.code)
        return TransferOutcome(TransferStatus.COMPLETED, 0, 0.0)
    # One memoised profile lookup replaces three per-call closed-form
    # evaluations; the values are identical to the uncached formulas.
    profile = channel.loss_profile(packet_type)
    h_const = profile.p_drop + break_hazard
    p_mismatch = profile.p_hit * profile.p_undetected + mismatch_hazard

    break_index = _sample_break_index(
        rng, h_const, break_hazard, latent_multiplier, latent_tau, start_age, n_payloads
    )
    mismatch_index = _sample_geometric(rng, p_mismatch, n_payloads)

    per_payload = packet_type.duration
    if break_index is None and mismatch_index is None:
        outcome = TransferOutcome(
            TransferStatus.COMPLETED, n_payloads, n_payloads * per_payload
        )
    elif mismatch_index is not None and (break_index is None or mismatch_index < break_index):
        outcome = TransferOutcome(
            TransferStatus.MISMATCH, mismatch_index, (mismatch_index + 1) * per_payload
        )
    else:
        outcome = TransferOutcome(
            TransferStatus.LOSS, break_index, (break_index + 1) * per_payload
        )
    obs.transfer_outcome(outcome.status.code)
    obs.transfer_payloads.observe(outcome.payloads_before_event)
    return outcome


def _sample_geometric(rng: random.Random, p: float, n: int) -> Optional[int]:
    """First-success index of a geometric truncated to [0, n), else None."""
    if p <= 0.0:
        return None
    if p >= 1.0:
        return 0
    u = rng.random()
    if u < (1.0 - p) ** n:
        return None
    index = int(math.log(u) / math.log(1.0 - p))
    return min(index, n - 1)


def _cumulative_hazard(
    k: float,
    h_const: float,
    break_hazard: float,
    latent_multiplier: float,
    latent_tau: float,
    start_age: float,
) -> float:
    total = h_const * k
    if latent_multiplier > 1.0 and break_hazard > 0.0:
        extra_rate = break_hazard * (latent_multiplier - 1.0)
        total += extra_rate * latent_tau * (
            math.exp(-start_age / latent_tau) - math.exp(-(start_age + k) / latent_tau)
        )
    return total


def _sample_break_index(
    rng: random.Random,
    h_const: float,
    break_hazard: float,
    latent_multiplier: float,
    latent_tau: float,
    start_age: float,
    n: int,
) -> Optional[int]:
    """Inverse-CDF sample of the break position under the age-varying hazard."""
    target = -math.log(max(rng.random(), 1e-300))
    if latent_multiplier <= 1.0 or break_hazard <= 0.0:
        # Constant hazard: the cumulative hazard is the linear h_const*k,
        # so the bisection runs against inlined arithmetic (identical
        # expressions, hence identical floats — just no call overhead).
        if h_const * n < target:
            return None
        lo, hi = 0.0, float(n)
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if h_const * mid < target:
                lo = mid
            else:
                hi = mid
        return min(int(hi), n - 1)
    if _cumulative_hazard(n, h_const, break_hazard, latent_multiplier, latent_tau, start_age) < target:
        return None
    lo, hi = 0.0, float(n)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if (
            _cumulative_hazard(mid, h_const, break_hazard, latent_multiplier, latent_tau, start_age)
            < target
        ):
            lo = mid
        else:
            hi = mid
    return min(int(hi), n - 1)


__all__ = [
    "Baseband",
    "TxStatus",
    "TxOutcome",
    "TransferStatus",
    "TransferOutcome",
    "sample_transfer",
]

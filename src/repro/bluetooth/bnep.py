"""Bluetooth Network Encapsulation Protocol (BNEP).

BNEP encapsulates Ethernet (and thus IP) frames into L2CAP packets,
exposing a virtual network interface (``bnep0``) to the host OS.  The
interface has a *lifecycle*: after the L2CAP channel opens, the BNEP
connection is added and the OS hotplug machinery must configure the
interface before an IP socket can bind it — the T_C / T_H race behind
"Bind failed" (paper §4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro import get_logger
from repro.collection.logs import SystemLog
from repro.core.failure_model import SystemFailureType
from repro.obs.instruments import stack_instruments
from .l2cap import L2capChannel

log = get_logger("bluetooth.bnep")

#: The BNEP MTU — 1691 bytes (the value the paper fixes L_S/L_R to in
#: the connection-length experiment of figure 3b).
BNEP_MTU = 1691
#: BNEP protocol overhead per Ethernet frame (header + control).
BNEP_HEADER = 15


class InterfaceState(enum.Enum):
    """Lifecycle of the bnepN virtual network interface."""

    ABSENT = "absent"  # no bnep0 device exists
    CREATED = "created"  # connection added, not yet configured
    CONFIGURED = "configured"  # hotplug has brought it up; bindable


@dataclass
class BnepInterface:
    """The virtual ``bnepN`` network interface of one PAN connection."""

    name: str
    channel: L2capChannel
    state: InterfaceState = InterfaceState.CREATED
    frames_sent: int = 0

    @property
    def bindable(self) -> bool:
        return self.state is InterfaceState.CONFIGURED


class BnepLayer:
    """BNEP connection manager of one host."""

    def __init__(self, system_log: SystemLog) -> None:
        self._log = system_log
        self._counter = 0
        self.interface: Optional[BnepInterface] = None

    def add_connection(self, channel: L2capChannel) -> BnepInterface:
        """Add a BNEP connection over an open L2CAP channel.

        Creates the ``bnepN`` interface in CREATED state; the host's
        hotplug machinery is responsible for moving it to CONFIGURED.
        Fails (logging the characteristic error) when an interface is
        already occupied.
        """
        if self.interface is not None and self.interface.state is not InterfaceState.ABSENT:
            log.warning("bnep device occupied by %s", self.interface.name)
            stack_instruments().bnep_errors.labels(kind="occupied").inc()
            self._log.error(SystemFailureType.BNEP, "occupied")
            raise BnepError("bnep device occupied")
        interface = BnepInterface(name=f"bnep{self._counter}", channel=channel)
        self._counter += 1
        self.interface = interface
        stack_instruments().bnep_connections.inc()
        log.debug("added BNEP connection on %s (cid %#06x)", interface.name, channel.cid)
        return interface

    def remove_connection(self) -> None:
        """Tear the BNEP connection down (idempotent)."""
        if self.interface is not None:
            self.interface.state = InterfaceState.ABSENT
            self.interface = None

    def frames_for(self, payload_len: int) -> int:
        """Ethernet frames needed for ``payload_len`` bytes of user data."""
        usable = BNEP_MTU - BNEP_HEADER
        if payload_len <= 0:
            return 1
        return -(-payload_len // usable)

    def reset(self) -> None:
        self.remove_connection()
        self._counter = 0


class BnepError(Exception):
    """BNEP-layer operation failed."""


# ---------------------------------------------------------------------------
# Frame encapsulation (BNEP v1.0 packet formats)
# ---------------------------------------------------------------------------

#: BNEP packet type values (Bluetooth PAN profile spec).
GENERAL_ETHERNET = 0x00
COMPRESSED_ETHERNET = 0x02

_MAC_LEN = 6


def encapsulate(
    payload: bytes,
    protocol: int = 0x0800,  # IPv4
    src: bytes = b"\x00" * _MAC_LEN,
    dst: bytes = b"\x00" * _MAC_LEN,
    compressed: bool = True,
) -> bytes:
    """Build a BNEP frame around an IP ``payload``.

    Compressed-Ethernet frames omit both MAC addresses (they are implied
    by the L2CAP channel) — the common case on a PAN link; General-
    Ethernet frames carry both.
    """
    if not 0 <= protocol <= 0xFFFF:
        raise ValueError(f"protocol out of range: {protocol:#x}")
    if len(src) != _MAC_LEN or len(dst) != _MAC_LEN:
        raise ValueError("MAC addresses must be 6 bytes")
    proto = protocol.to_bytes(2, "big")
    if compressed:
        header = bytes([COMPRESSED_ETHERNET]) + proto
    else:
        header = bytes([GENERAL_ETHERNET]) + dst + src + proto
    frame = header + payload
    if len(frame) > BNEP_MTU:
        raise ValueError(f"frame of {len(frame)} B exceeds the BNEP MTU")
    return frame


def decapsulate(frame: bytes) -> dict:
    """Parse a BNEP frame; returns type/protocol/addresses/payload.

    Raises :class:`BnepError` on malformed frames.
    """
    if not frame:
        raise BnepError("empty BNEP frame")
    packet_type = frame[0] & 0x7F
    if packet_type == COMPRESSED_ETHERNET:
        if len(frame) < 3:
            raise BnepError("truncated compressed-ethernet frame")
        return {
            "type": COMPRESSED_ETHERNET,
            "protocol": int.from_bytes(frame[1:3], "big"),
            "src": None,
            "dst": None,
            "payload": frame[3:],
        }
    if packet_type == GENERAL_ETHERNET:
        header_len = 1 + 2 * _MAC_LEN + 2
        if len(frame) < header_len:
            raise BnepError("truncated general-ethernet frame")
        return {
            "type": GENERAL_ETHERNET,
            "dst": frame[1 : 1 + _MAC_LEN],
            "src": frame[1 + _MAC_LEN : 1 + 2 * _MAC_LEN],
            "protocol": int.from_bytes(frame[13:15], "big"),
            "payload": frame[15:],
        }
    raise BnepError(f"unsupported BNEP packet type {packet_type:#x}")


__all__ = [
    "BnepLayer",
    "BnepInterface",
    "BnepError",
    "InterfaceState",
    "BNEP_MTU",
    "BNEP_HEADER",
]

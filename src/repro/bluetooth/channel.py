"""Wireless channel model for a Bluetooth piconet link.

The paper attributes data-transfer failures (packet loss despite ARQ,
and data corruption despite CRC/FEC) to the *non-memoryless* nature of
the 2.4 GHz ISM channel: multi-path fading and electromagnetic
interference produce correlated error bursts that defeat integrity
mechanisms designed for independent bit errors.

We model each NAP-PANU link as a two-state Gilbert-Elliott channel:

* **GOOD** — residual bit error rate from thermal noise; depends weakly
  on antenna distance through a log-distance path-loss model.
* **BAD** — an error burst (fade or interferer); high bit error rate,
  exponential dwell time.

Two query styles are offered:

* *bit-accurate* (:meth:`Channel.sample_packet_errors`) — sample the
  number of bit errors a packet of a given length experiences; used by
  the bit-level Baseband path and the unit tests.
* *batch-analytic* (:meth:`Channel.transfer_statistics`,
  :meth:`Channel.sample_payload_outcome`) — closed-form per-packet hit
  and drop probabilities derived from the chain's stationary behaviour;
  used by the campaign simulations, where months of traffic must run in
  seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.instruments import stack_instruments
from .packets import PacketType


def sample_poisson(rng: random.Random, mean: float) -> int:
    """Sample a Poisson variate (Knuth for small mean, normal approx above)."""
    if mean <= 0:
        return 0
    if mean < 30.0:
        limit = math.exp(-mean)
        k = 0
        product = rng.random()
        while product > limit:
            k += 1
            product *= rng.random()
        return k
    # Normal approximation with continuity correction.
    value = rng.gauss(mean, math.sqrt(mean))
    return max(0, int(round(value)))


@dataclass(frozen=True)
class PathLoss:
    """Log-distance path loss mapped to a residual (GOOD-state) BER.

    Class 2 devices have ~10 m range; within a desk-scale PAN the paper
    found failure rates essentially independent of distance (33.3 / 37.1
    / 29.6 % at 0.5 / 5 / 7 m), so the distance effect here is present
    but deliberately weak.
    """

    reference_ber: float = 2e-6  # BER at the reference distance
    reference_distance: float = 1.0  # metres
    exponent: float = 0.35  # weak distance sensitivity

    def ber_at(self, distance: float) -> float:
        """GOOD-state BER at ``distance`` metres."""
        if distance <= 0:
            raise ValueError(f"distance must be positive: {distance}")
        scale = (distance / self.reference_distance) ** self.exponent
        return min(0.5, self.reference_ber * scale)


@dataclass
class ChannelConfig:
    """Parameters of one Gilbert-Elliott link."""

    distance: float = 1.0  # metres between the two antennas
    path_loss: PathLoss = field(default_factory=PathLoss)
    burst_rate: float = 1.0 / 12000.0  # GOOD->BAD transitions per second
    mean_burst: float = 0.030  # mean BAD dwell, seconds
    ber_bad: float = 0.08  # BER inside a burst
    retransmit_limit: int = 8  # Baseband ARQ retries before payload drop
    interference_factor: float = 1.0  # >1 while an interference episode is on

    @property
    def ber_good(self) -> float:
        return self.path_loss.ber_at(self.distance)

    @property
    def effective_burst_rate(self) -> float:
        return self.burst_rate * self.interference_factor

    @property
    def stationary_bad(self) -> float:
        """Stationary probability of being in the BAD state."""
        lam = self.effective_burst_rate
        mu = 1.0 / self.mean_burst
        return lam / (lam + mu)


class Channel:
    """One directional NAP-PANU radio link with burst-error dynamics.

    Query protocol
    --------------
    Both query styles answer the same question — "what does the channel
    do to packets of ``packet_type``?" — at different fidelities, and
    both draw *only* from the injected ``rng`` stream:

    * **bit-accurate** — :meth:`sample_packet_errors` advances the
      Gilbert-Elliott state machine to the packet's instant (``now``)
      and samples a bit-error count for its air bits.  Exact, but one
      call per packet.
    * **batch-analytic** — :meth:`transfer_statistics` (expectations
      for ``n_packets`` payloads) and :meth:`sample_payload_outcome`
      (one sampled payload fate) use closed-form stationary hit/drop
      probabilities, so months of traffic cost O(1) per transfer.

    The closed-form quantities depend only on the packet type and the
    :class:`ChannelConfig` scalars, so they are memoised per packet
    type (see :meth:`loss_profile`); the cache invalidates itself
    whenever any config field changes — e.g. via
    :meth:`set_interference` during an interference episode.  The
    memoisation therefore returns bit-for-bit the values the uncached
    formulas would, and the RNG draw sequence is unchanged.
    """

    def __init__(self, config: ChannelConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self._bad = False
        #: Sim time at which the current dwell ends; None until the
        #: first GOOD dwell is drawn (lazily, so construction consumes
        #: no randomness).
        self._state_until: Optional[float] = None
        self._obs = stack_instruments()
        # Memoised closed-form per-packet-type quantities, keyed by the
        # config scalars they were computed from (Gilbert-Elliott
        # sojourn/stationary terms are precomputed here instead of per
        # packet).  _profile_key() detects any config mutation.
        self._profiles: dict = {}
        self._profile_config_key: tuple = self._config_key()
        self._stationary_bad = config.stationary_bad
        self._ber_good = config.ber_good

    def _config_key(self) -> tuple:
        cfg = self.config
        return (
            cfg.distance,
            cfg.path_loss,
            cfg.burst_rate,
            cfg.mean_burst,
            cfg.ber_bad,
            cfg.retransmit_limit,
            cfg.interference_factor,
        )

    def loss_profile(self, packet_type: PacketType) -> "LossProfile":
        """Memoised closed-form loss quantities for one packet type.

        Values are identical to evaluating the underlying formulas
        directly; the cache is rebuilt whenever the config changes.
        """
        key = self._config_key()
        if key != self._profile_config_key:
            self._profiles.clear()
            self._profile_config_key = key
            self._stationary_bad = self.config.stationary_bad
            self._ber_good = self.config.ber_good
        profile = self._profiles.get(packet_type)
        if profile is None:
            profile = self._compute_profile(packet_type)
            self._profiles[packet_type] = profile
        return profile

    def _compute_profile(self, packet_type: PacketType) -> "LossProfile":
        cfg = self.config
        duration = packet_type.duration
        # P(packet overlaps a burst): stationary BAD probability plus
        # the chance of a burst starting during the packet's air time.
        p_start_in_flight = 1.0 - math.exp(-cfg.effective_burst_rate * duration)
        pi_bad = self._stationary_bad
        p_hit = pi_bad + (1.0 - pi_bad) * p_start_in_flight
        # P(CRC failure from sparse GOOD-state errors): DMx FEC corrects
        # single-bit errors per 15-bit block, DHx fails on any error.
        bits = packet_type.air_bits
        p_bit = self._ber_good
        if not packet_type.fec:
            p_good_fail = 1.0 - (1.0 - p_bit) ** bits
        else:
            n_blocks = max(1, bits // 15)
            p_block_2plus = (
                1.0 - (1.0 - p_bit) ** 15 - 15 * p_bit * (1.0 - p_bit) ** 14
            )
            p_good_fail = 1.0 - (1.0 - p_block_2plus) ** n_blocks
        # P(payload dropped | hit): burst outlives the ARQ retry window.
        retry_window = cfg.retransmit_limit * duration
        p_drop_given_hit = math.exp(-retry_window / cfg.mean_burst)
        # P(corrupt payload escapes CRC | hit): 16-bit CRC misses ~2^-16
        # of burst patterns; FEC miscorrection raises the escape rate.
        p_undetected = (2.0 ** -16) * (4.0 if packet_type.fec else 1.0)
        return LossProfile(
            packet_type=packet_type,
            p_hit=p_hit,
            p_good_state_failure=p_good_fail,
            p_drop_given_hit=p_drop_given_hit,
            p_undetected=p_undetected,
            p_drop=p_hit * p_drop_given_hit,
        )

    # -- state machine -----------------------------------------------------

    def _advance(self, now: float) -> None:
        """Advance the lazily evaluated GOOD/BAD state machine to ``now``."""
        if self._state_until is None:
            self._state_until = self._rng.expovariate(
                self.config.effective_burst_rate
            )
        while self._state_until <= now:
            if self._bad:
                self._bad = False
                self._obs.channel_to_good.inc()
                dwell = self._rng.expovariate(self.config.effective_burst_rate)
            else:
                self._bad = True
                self._obs.channel_to_bad.inc()
                dwell = self._rng.expovariate(1.0 / self.config.mean_burst)
            self._state_until += dwell

    def is_bad(self, now: float) -> bool:
        """Whether the channel is inside an error burst at time ``now``."""
        self._advance(now)
        return self._bad

    def set_interference(self, factor: float) -> None:
        """Scale the burst arrival rate (an interference episode).

        Invalidates the memoised closed-form profiles (they depend on
        the effective burst rate).
        """
        if factor <= 0:
            raise ValueError("interference factor must be positive")
        self.config.interference_factor = factor
        self._profiles.clear()
        self._profile_config_key = self._config_key()
        self._stationary_bad = self.config.stationary_bad
        self._ber_good = self.config.ber_good

    # -- bit-accurate path ---------------------------------------------------

    def sample_packet_errors(self, now: float, air_bits: int) -> int:
        """Number of bit errors hitting a packet of ``air_bits`` at ``now``."""
        if self.is_bad(now):
            ber = self.config.ber_bad
            self._obs.channel_burst_hits.inc()
        else:
            ber = self.config.ber_good
        errors = sample_poisson(self._rng, ber * air_bits)
        if errors:
            self._obs.channel_bit_errors.inc(errors)
        return errors

    # -- batch-analytic path ---------------------------------------------------

    def packet_hit_probability(self, packet_type: PacketType) -> float:
        """P(a packet of this type overlaps an error burst).

        Equals the stationary BAD probability plus the chance of a burst
        starting during the packet's air time.  Memoised — see
        :meth:`loss_profile`.
        """
        return self.loss_profile(packet_type).p_hit

    def good_state_failure_probability(self, packet_type: PacketType) -> float:
        """P(CRC failure of a full packet from GOOD-state bit errors).

        DMx packets are protected by the (15,10) FEC, which corrects all
        single-bit errors per block, so sparse GOOD-state errors almost
        never fail them; DHx packets fail on any bit error.
        """
        return self.loss_profile(packet_type).p_good_state_failure

    def drop_probability_given_hit(self, packet_type: PacketType) -> float:
        """P(payload dropped | packet hit a burst).

        The Baseband retransmits a failed payload up to
        ``retransmit_limit`` times; each retry occupies one packet
        exchange.  The payload is dropped iff the burst outlives the
        whole retry window (exponential dwell => closed form).
        """
        return self.loss_profile(packet_type).p_drop_given_hit

    def payload_drop_probability(self, packet_type: PacketType) -> float:
        """Unconditional P(one baseband payload of this type is dropped)."""
        return self.loss_profile(packet_type).p_drop

    def undetected_error_probability(self, packet_type: PacketType) -> float:
        """P(corrupted payload delivered as good | packet hit a burst).

        A 16-bit CRC misses ~2^-16 of random burst patterns; FEC
        miscorrection on DMx packets turns some burst patterns into
        different (but valid-looking) codewords, raising the escape rate.
        """
        return self.loss_profile(packet_type).p_undetected

    def transfer_statistics(
        self, packet_type: PacketType, n_packets: int
    ) -> "TransferStatistics":
        """Closed-form loss/mismatch expectations for an n-packet burst.

        Batch-analytic path; draws no randomness.  The per-type
        probabilities come from the memoised :meth:`loss_profile` and
        are identical to the uncached closed form.
        """
        profile = self.loss_profile(packet_type)
        p_hit = profile.p_hit
        return TransferStatistics(
            packet_type=packet_type,
            n_packets=n_packets,
            p_hit=p_hit,
            p_drop=profile.p_drop,
            p_mismatch=p_hit * profile.p_undetected,
        )

    def sample_payload_outcome(self, packet_type: PacketType) -> str:
        """Sample one payload's fate: 'ok', 'retransmitted', 'dropped' or 'mismatch'.

        Batch-analytic path: stateless (stationary) sampling, consuming
        1-3 draws from the injected RNG stream — the same draw sequence
        as the uncached implementation.
        """
        profile = self.loss_profile(packet_type)
        rng_random = self._rng.random
        if rng_random() >= profile.p_hit:
            if rng_random() < profile.p_good_state_failure:
                return "retransmitted"
            return "ok"
        if rng_random() < profile.p_undetected:
            return "mismatch"
        if rng_random() < profile.p_drop_given_hit:
            return "dropped"
        return "retransmitted"


@dataclass(frozen=True)
class LossProfile:
    """Memoised closed-form loss quantities for one packet type.

    All probabilities are exactly the values the corresponding
    :class:`Channel` formulas produce; the profile is just those
    formulas evaluated once per (packet type, channel configuration).
    """

    __slots__ = (
        "packet_type",
        "p_hit",
        "p_good_state_failure",
        "p_drop_given_hit",
        "p_undetected",
        "p_drop",
    )

    packet_type: PacketType
    #: P(packet overlaps an error burst).
    p_hit: float
    #: P(CRC failure from GOOD-state bit errors).
    p_good_state_failure: float
    #: P(payload dropped | packet hit a burst).
    p_drop_given_hit: float
    #: P(corrupt payload escapes the CRC | packet hit a burst).
    p_undetected: float
    #: Unconditional P(payload dropped) = p_hit * p_drop_given_hit.
    p_drop: float


@dataclass(frozen=True)
class TransferStatistics:
    """Expected outcome rates for a batch of payload transmissions."""

    __slots__ = ("packet_type", "n_packets", "p_hit", "p_drop", "p_mismatch")

    packet_type: PacketType
    n_packets: int
    p_hit: float
    p_drop: float
    p_mismatch: float

    @property
    def expected_drops(self) -> float:
        return self.n_packets * self.p_drop

    @property
    def expected_mismatches(self) -> float:
        return self.n_packets * self.p_mismatch

    @property
    def survival_probability(self) -> float:
        """P(the whole batch completes without a drop)."""
        return (1.0 - self.p_drop) ** self.n_packets


def sample_first_drop(
    rng: random.Random, p_drop: float, n_packets: int
) -> Optional[int]:
    """Index (0-based) of the first dropped payload in a batch, or None.

    Geometric sampling via the inverse CDF, so months-long transfers do
    not require a per-packet loop.
    """
    if p_drop <= 0.0 or n_packets <= 0:
        return None
    if p_drop >= 1.0:
        return 0
    u = rng.random()
    survive_all = (1.0 - p_drop) ** n_packets
    if u < survive_all:
        return None
    # Invert P(first drop at index k) truncated to [0, n).
    index = int(math.log(u) / math.log(1.0 - p_drop))
    return min(index, n_packets - 1)


__all__ = [
    "Channel",
    "ChannelConfig",
    "LossProfile",
    "PathLoss",
    "TransferStatistics",
    "sample_first_drop",
    "sample_poisson",
]

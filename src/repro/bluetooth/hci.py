"""Host Controller Interface (HCI) layer.

The HCI is the API boundary between host software and the Baseband
controller: commands go down, events come back, and data flows through
*connection handles*.  Its two characteristic failures (Table 1) are a
timeout transmitting a command to the firmware, and a command issued
for an unknown (stale) connection handle — both of which this layer
detects and logs itself, as the BlueZ ``hcid`` does.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.collection.logs import SystemLog
from repro.core.failure_model import SystemFailureType
from repro.sim import Timeout
from .transport import Transport


class HciCommandError(Exception):
    """An HCI command failed at the HCI layer (timeout / bad handle)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ConnectionState(enum.Enum):
    """Lifecycle of one ACL connection handle."""

    CONNECTING = "connecting"
    CONNECTED = "connected"
    DISCONNECTING = "disconnecting"
    CLOSED = "closed"


@dataclass
class HciConnection:
    """One ACL connection tracked by its HCI handle."""

    handle: int
    peer: str
    state: ConnectionState = ConnectionState.CONNECTING


#: Default HCI command timeout — BlueZ uses 10 s for most commands.
COMMAND_TIMEOUT = 10.0
#: Latency of a successfully completed command round-trip.
COMMAND_LATENCY = 0.020


class HciLayer:
    """HCI command/event engine of one host."""

    def __init__(
        self,
        system_log: SystemLog,
        transport: Transport,
        rng: random.Random,
    ) -> None:
        self._log = system_log
        self._transport = transport
        self._rng = rng
        self._handles = itertools.count(1)
        self.connections: Dict[int, HciConnection] = {}
        self.commands_completed = 0
        self.command_timeouts = 0
        self.invalid_handle_errors = 0

    # -- command path -------------------------------------------------------

    def command(
        self, opcode: str, handle: Optional[int] = None
    ) -> Generator:
        """Issue one HCI command; yields simulated time, returns nothing.

        Raises :class:`HciCommandError` when the referenced connection
        handle is unknown (and logs the characteristic error line).
        """
        yield Timeout(self.begin_command(handle))
        self.end_command()
        return None

    def begin_command(self, handle: Optional[int] = None) -> float:
        """Validate and dispatch one command; returns its round-trip delay.

        Split out of :meth:`command` so hot callers can yield the delay
        from their own generator frame instead of delegating into a
        fresh one per command; pair every call with :meth:`end_command`
        after the wait.
        """
        self.check_handle(handle)
        return self._transport.send_command() + COMMAND_LATENCY

    def check_handle(self, handle: Optional[int]) -> None:
        """Raise (and log) the stale-handle HCI error for an unknown handle."""
        if handle is not None and handle not in self.connections:
            self.invalid_handle_errors += 1
            self._log.error(SystemFailureType.HCI, "invalid_handle")
            raise HciCommandError(f"unknown connection handle {handle}")

    def end_command(self) -> None:
        """Account the completion of a command begun with :meth:`begin_command`."""
        self.commands_completed += 1

    def fail_command_timeout(self) -> Generator:
        """Simulate a command that never reaches the firmware.

        Waits the full command timeout, logs the HCI error and raises.
        """
        self.command_timeouts += 1
        yield Timeout(COMMAND_TIMEOUT)
        self._log.error(SystemFailureType.HCI, "timeout")
        raise HciCommandError("command tx timeout")

    # -- connection bookkeeping ------------------------------------------------

    def open_connection(self, peer: str) -> HciConnection:
        """Allocate a handle for a new ACL connection to ``peer``."""
        connection = HciConnection(handle=next(self._handles), peer=peer)
        self.connections[connection.handle] = connection
        return connection

    def complete_connection(self, handle: int) -> None:
        """Mark an ACL connection as established.

        Tolerates an unknown handle: a BT stack reset (hardware
        replacement, SIRA level 3+) can clear the handle table while a
        connect procedure is parked on a timer.  The establishment then
        'completes' against a dead handle, and the very next command on
        it surfaces the stale-handle HCI error — the realistic failure
        signature — instead of crashing the simulation.
        """
        connection = self.connections.get(handle)
        if connection is not None:
            connection.state = ConnectionState.CONNECTED

    def close_connection(self, handle: int) -> None:
        """Release a connection handle (idempotent)."""
        connection = self.connections.pop(handle, None)
        if connection is not None:
            connection.state = ConnectionState.CLOSED

    def valid_handle(self, handle: int) -> bool:
        connection = self.connections.get(handle)
        return connection is not None and connection.state is ConnectionState.CONNECTED

    def reset(self) -> None:
        """Drop every connection and counter (BT stack reset)."""
        for handle in list(self.connections):
            self.close_connection(handle)
        self.connections.clear()


__all__ = [
    "HciLayer",
    "HciConnection",
    "HciCommandError",
    "ConnectionState",
    "COMMAND_TIMEOUT",
    "COMMAND_LATENCY",
]

"""Typed errors raised by the simulated Bluetooth stack.

Every error that a workload can observe maps onto one user-level
failure type of the failure model (Table 1).  The *system-level*
evidence of the error is not carried on the exception: stack layers
write their own entries to the node's system log as the error unfolds,
exactly as BlueZ/Broadcom components log independently on a real host.
The analysis pipeline later has to rediscover the error-failure
relationship from the two logs — it gets no oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.core.failure_model import UserFailureType


class BTError(Exception):
    """Base class of all simulated Bluetooth failures."""

    #: User-level failure type this error manifests as (None on the base
    #: class, which is only used for protocol-invariant violations).
    user_failure: Optional[UserFailureType] = None

    def __init__(self, detail: str = "", scope: Optional[int] = None) -> None:
        label = self.user_failure.value if self.user_failure else "bluetooth error"
        super().__init__(detail or label)
        self.detail = detail
        #: Damage depth (1..7): the minimal recovery-action level that can
        #: clear the underlying damage.  Hidden from the workload and the
        #: analysis; consumed only by the recovery engine's success check.
        self.scope = scope if scope is not None else 1
        #: Propagation-trace span id (0 = untraced).  Carried so the
        #: workload can stamp the failure classification onto the span
        #: opened at fault activation; invisible to the analysis.
        self.trace_id = 0


class InquiryScanError(BTError):
    """The inquiry procedure terminated abnormally."""

    user_failure = UserFailureType.INQUIRY_SCAN_FAILED


class SdpSearchError(BTError):
    """The SDP search transaction terminated abnormally."""

    user_failure = UserFailureType.SDP_SEARCH_FAILED


class NapNotFoundError(BTError):
    """SDP completed but did not return the NAP service record."""

    user_failure = UserFailureType.NAP_NOT_FOUND


class ConnectError(BTError):
    """L2CAP connection establishment with the NAP failed."""

    user_failure = UserFailureType.CONNECT_FAILED


class PanConnectError(BTError):
    """The BNEP/PAN connection could not be established."""

    user_failure = UserFailureType.PAN_CONNECT_FAILED


class BindError(BTError):
    """An IP socket could not bind the BNEP network interface."""

    user_failure = UserFailureType.BIND_FAILED


class SwitchRoleRequestError(BTError):
    """The master/slave switch request never reached the master."""

    user_failure = UserFailureType.SW_ROLE_REQUEST_FAILED


class SwitchRoleCommandError(BTError):
    """The switch request was accepted but the command completed abnormally."""

    user_failure = UserFailureType.SW_ROLE_COMMAND_FAILED


class PacketLossError(BTError):
    """An expected packet never arrived (30 s receive timeout)."""

    user_failure = UserFailureType.PACKET_LOSS

    def __init__(
        self,
        detail: str = "",
        scope: Optional[int] = None,
        packets_sent: int = 0,
    ) -> None:
        super().__init__(detail, scope)
        #: Number of packets successfully exchanged before the loss —
        #: the "connection length" of figure 3b.
        self.packets_sent = packets_sent


class DataMismatchError(BTError):
    """A packet arrived with corrupted content despite CRC/FEC."""

    user_failure = UserFailureType.DATA_MISMATCH


#: Receive timeout after which a missing packet is declared lost (paper, Table 1).
PACKET_LOSS_TIMEOUT = 30.0


def traced(error: BTError, trace_id: int) -> BTError:
    """Attach a propagation-trace span id to ``error`` and return it.

    Lets raise sites stay one line::

        raise traced(ConnectError(scope=activation.scope), activation.trace_id)
    """
    error.trace_id = trace_id
    return error


__all__ = [
    "BTError",
    "traced",
    "InquiryScanError",
    "SdpSearchError",
    "NapNotFoundError",
    "ConnectError",
    "PanConnectError",
    "BindError",
    "SwitchRoleRequestError",
    "SwitchRoleCommandError",
    "PacketLossError",
    "DataMismatchError",
    "PACKET_LOSS_TIMEOUT",
]

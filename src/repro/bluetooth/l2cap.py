"""Logical Link Control and Adaptation Protocol (L2CAP).

L2CAP provides connection-oriented channels over the ACL link, with
multiplexing (PSMs/CIDs), segmentation/reassembly toward the Baseband
MTU, and group abstractions.  Its characteristic failure signature is
the reception of unexpected start/continuation frames when reassembly
state desynchronises (Table 1).
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.collection.logs import SystemLog
from repro.core.failure_model import SystemFailureType
from repro.obs.instruments import stack_instruments
from repro.sim import Timeout
from .hci import HciLayer
from .packets import PacketType, packets_needed

#: Well-known Protocol/Service Multiplexer values.
PSM_SDP = 0x0001
PSM_BNEP = 0x000F

#: L2CAP signalling round-trip (connect req/rsp + configure req/rsp).
SIGNALLING_DELAY = 0.060


class ChannelState(enum.Enum):
    """Lifecycle of one L2CAP channel."""

    WAIT_CONNECT = "wait_connect"
    OPEN = "open"
    CLOSED = "closed"


@dataclass
class L2capChannel:
    """One connection-oriented L2CAP channel."""

    cid: int
    psm: int
    hci_handle: int
    peer: str
    state: ChannelState = ChannelState.WAIT_CONNECT
    mtu: int = 672  # default L2CAP MTU
    sdus_sent: int = 0

    def segment_count(self, sdu_len: int, packet_type: PacketType) -> int:
        """Baseband packets needed to carry one SDU of ``sdu_len`` bytes."""
        return packets_needed(sdu_len, packet_type)


class L2capLayer:
    """L2CAP channel manager of one host."""

    def __init__(
        self, system_log: SystemLog, hci: HciLayer, rng: random.Random
    ) -> None:
        self._log = system_log
        self._hci = hci
        self._rng = rng
        self._cids = itertools.count(0x0040)  # dynamic CID space
        self.channels: Dict[int, L2capChannel] = {}
        self.unexpected_frames = 0
        self._obs = stack_instruments()

    def connect(self, psm: int, hci_handle: int, peer: str) -> Generator:
        """Open a channel on ``psm`` over an existing ACL connection.

        Returns the open :class:`L2capChannel`.  The ACL handle must be
        valid; a stale handle surfaces as an HCI error at the layer
        below (raised by :meth:`HciLayer.command`).
        """
        hci = self._hci
        yield Timeout(hci.begin_command(hci_handle))
        hci.end_command()
        channel = L2capChannel(
            cid=next(self._cids), psm=psm, hci_handle=hci_handle, peer=peer
        )
        self.channels[channel.cid] = channel
        yield Timeout(SIGNALLING_DELAY)
        channel.state = ChannelState.OPEN
        return channel

    def open_channel(self, psm: int, hci_handle: int, peer: str) -> L2capChannel:
        """Materialise a channel whose connect/signalling wait already elapsed.

        Companion to the wait-chained establishment path of
        :meth:`repro.bluetooth.pan.PanProfile.connect`: the caller slept
        through the command and signalling delays in one combined wait,
        so the channel is registered directly in the OPEN state.
        """
        channel = L2capChannel(
            cid=next(self._cids),
            psm=psm,
            hci_handle=hci_handle,
            peer=peer,
            state=ChannelState.OPEN,
        )
        self.channels[channel.cid] = channel
        return channel

    def disconnect(self, cid: int) -> Generator:
        """Close a channel (idempotent).

        Completes without consuming an event when there is nothing to
        signal (unknown channel, or a stale ACL handle after a link
        break) — the zero-delay wait it used to yield only cost a trip
        through the event queue.
        """
        channel = self.channels.pop(cid, None)
        if channel is not None and channel.state is ChannelState.OPEN:
            channel.state = ChannelState.CLOSED
            hci = self._hci
            if hci.valid_handle(channel.hci_handle):
                yield Timeout(hci.begin_command(channel.hci_handle))
                hci.end_command()
        return None

    def note_unexpected_frame(self, start: bool) -> None:
        """Reassembly desync: log the unexpected start/continuation frame."""
        self.unexpected_frames += 1
        if start:
            self._obs.l2cap_unexpected_start.inc()
        else:
            self._obs.l2cap_unexpected_cont.inc()
        variant = "unexpected_start" if start else "unexpected_cont"
        self._log.error(SystemFailureType.L2CAP, variant)

    def open_channels(self) -> int:
        return sum(1 for c in self.channels.values() if c.state is ChannelState.OPEN)

    def reset(self) -> None:
        """Drop all channels (BT stack reset)."""
        for channel in self.channels.values():
            channel.state = ChannelState.CLOSED
        self.channels.clear()


# ---------------------------------------------------------------------------
# B-frame framing and segmentation/reassembly
# ---------------------------------------------------------------------------

#: Basic-mode L2CAP header: 2-byte payload length + 2-byte channel id.
BFRAME_HEADER = 4


def build_bframe(cid: int, payload: bytes) -> bytes:
    """Frame one L2CAP basic-mode PDU."""
    if not 0 <= cid <= 0xFFFF:
        raise ValueError(f"cid out of range: {cid}")
    if len(payload) > 0xFFFF:
        raise ValueError("L2CAP payload too large")
    return len(payload).to_bytes(2, "little") + cid.to_bytes(2, "little") + payload


def parse_bframe(data: bytes) -> "tuple[int, bytes]":
    """Parse a B-frame; returns (cid, payload).  Raises ValueError."""
    if len(data) < BFRAME_HEADER:
        raise ValueError("truncated L2CAP frame")
    length = int.from_bytes(data[0:2], "little")
    cid = int.from_bytes(data[2:4], "little")
    payload = data[BFRAME_HEADER:]
    if len(payload) != length:
        raise ValueError(
            f"L2CAP length mismatch: header says {length}, got {len(payload)}"
        )
    return cid, payload


def segment_sdu(sdu: bytes, fragment_size: int) -> List["tuple[bool, bytes]"]:
    """Split an SDU into (is_start, fragment) pairs of ``fragment_size``.

    This models the Baseband-facing fragmentation: the first fragment is
    flagged as a *start* (L_CH = start of L2CAP PDU), the rest are
    continuations — the distinction whose violation produces the
    "unexpected start/continuation frame" errors of the failure model.
    """
    if fragment_size <= 0:
        raise ValueError("fragment size must be positive")
    if not sdu:
        return [(True, b"")]
    fragments = []
    for offset in range(0, len(sdu), fragment_size):
        fragments.append((offset == 0, sdu[offset : offset + fragment_size]))
    return fragments


class Reassembler:
    """Reassembles start/continuation fragments back into SDUs.

    Desynchronisation (a continuation with no SDU in progress, or a new
    start mid-SDU) is reported through the owning layer's
    :meth:`L2capLayer.note_unexpected_frame`, producing the exact
    system-log signature of Table 1.
    """

    def __init__(self, expected_length: Optional[int] = None,
                 layer: Optional[L2capLayer] = None) -> None:
        self.expected_length = expected_length
        self._layer = layer
        self._buffer: Optional[bytearray] = None
        self.completed: List[bytes] = []
        self.errors = 0

    def push(self, is_start: bool, fragment: bytes) -> Optional[bytes]:
        """Feed one fragment; returns the SDU when it completes."""
        if is_start:
            if self._buffer is not None:
                self._note(start=True)
            self._buffer = bytearray(fragment)
        else:
            if self._buffer is None:
                self._note(start=False)
                return None
            self._buffer.extend(fragment)
        if (
            self.expected_length is not None
            and self._buffer is not None
            and len(self._buffer) >= self.expected_length
        ):
            sdu = bytes(self._buffer[: self.expected_length])
            self._buffer = None
            self.completed.append(sdu)
            return sdu
        return None

    def flush(self) -> Optional[bytes]:
        """Close the current SDU regardless of expected length."""
        if self._buffer is None:
            return None
        sdu = bytes(self._buffer)
        self._buffer = None
        self.completed.append(sdu)
        return sdu

    def _note(self, start: bool) -> None:
        self.errors += 1
        stack_instruments().l2cap_reassembly_errors.inc()
        if self._layer is not None:
            self._layer.note_unexpected_frame(start=start)


__all__ = [
    "L2capLayer",
    "L2capChannel",
    "ChannelState",
    "PSM_SDP",
    "PSM_BNEP",
    "SIGNALLING_DELAY",
    "BFRAME_HEADER",
    "build_bframe",
    "parse_bframe",
    "segment_sdu",
    "Reassembler",
]

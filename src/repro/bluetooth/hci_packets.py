"""Byte-level HCI packet encoding/decoding (UART transport layer H4).

The Host Controller Interface defines a binary packet format carried
over the host transport: command packets (opcode = OGF/OCF, parameter
block), event packets (event code, parameters), and ACL data packets
(handle + flags, payload).  The simulated stack works at the operation
level for speed, but the codecs here are exact — they are what the
bit-accurate path and the tests use, and what makes the HCI layer's
"command for unknown connection handle" failure a real, parseable
artefact rather than a string.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: H4 packet-type indicator bytes.
H4_COMMAND = 0x01
H4_ACL_DATA = 0x02
H4_EVENT = 0x04


class Ogf(enum.IntEnum):
    """Opcode Group Fields used by the PAN path."""

    LINK_CONTROL = 0x01
    LINK_POLICY = 0x02
    CONTROLLER = 0x03
    INFORMATIONAL = 0x04


class Ocf(enum.IntEnum):
    """Opcode Command Fields (subset used by this stack)."""

    INQUIRY = 0x0001
    CREATE_CONNECTION = 0x0005
    DISCONNECT = 0x0006
    SWITCH_ROLE = 0x000B  # link-policy group
    RESET = 0x0003  # controller group


class EventCode(enum.IntEnum):
    """HCI event codes (subset)."""

    INQUIRY_COMPLETE = 0x01
    CONNECTION_COMPLETE = 0x03
    DISCONNECTION_COMPLETE = 0x05
    COMMAND_COMPLETE = 0x0E
    COMMAND_STATUS = 0x0F
    ROLE_CHANGE = 0x12


class HciStatus(enum.IntEnum):
    """HCI status/error codes (subset the failure model touches)."""

    SUCCESS = 0x00
    UNKNOWN_CONNECTION = 0x02  # "command for unknown connection handle"
    HARDWARE_FAILURE = 0x03
    PAGE_TIMEOUT = 0x04
    CONNECTION_TIMEOUT = 0x08
    COMMAND_DISALLOWED = 0x0C


def make_opcode(ogf: int, ocf: int) -> int:
    """Pack OGF (6 bits) and OCF (10 bits) into a 16-bit opcode."""
    if not 0 <= ogf < (1 << 6):
        raise ValueError(f"OGF out of range: {ogf}")
    if not 0 <= ocf < (1 << 10):
        raise ValueError(f"OCF out of range: {ocf}")
    return (ogf << 10) | ocf


def split_opcode(opcode: int) -> "tuple[int, int]":
    """Inverse of :func:`make_opcode`: returns (ogf, ocf)."""
    if not 0 <= opcode <= 0xFFFF:
        raise ValueError(f"opcode out of range: {opcode}")
    return opcode >> 10, opcode & 0x03FF


@dataclass(frozen=True)
class CommandPacket:
    """One HCI command packet."""

    opcode: int
    parameters: bytes = b""

    def encode(self) -> bytes:
        """Serialise to the H4 wire format."""
        if len(self.parameters) > 0xFF:
            raise ValueError("HCI command parameters exceed 255 bytes")
        return (
            bytes([H4_COMMAND])
            + self.opcode.to_bytes(2, "little")
            + bytes([len(self.parameters)])
            + self.parameters
        )

    @classmethod
    def decode(cls, data: bytes) -> "CommandPacket":
        if len(data) < 4 or data[0] != H4_COMMAND:
            raise ValueError("not an HCI command packet")
        opcode = int.from_bytes(data[1:3], "little")
        length = data[3]
        parameters = data[4:]
        if len(parameters) != length:
            raise ValueError(
                f"command length mismatch: header says {length}, got {len(parameters)}"
            )
        return cls(opcode=opcode, parameters=parameters)


@dataclass(frozen=True)
class EventPacket:
    """One HCI event packet."""

    event: int
    parameters: bytes = b""

    def encode(self) -> bytes:
        """Serialise to the H4 wire format."""
        if len(self.parameters) > 0xFF:
            raise ValueError("HCI event parameters exceed 255 bytes")
        return (
            bytes([H4_EVENT, self.event, len(self.parameters)]) + self.parameters
        )

    @classmethod
    def decode(cls, data: bytes) -> "EventPacket":
        if len(data) < 3 or data[0] != H4_EVENT:
            raise ValueError("not an HCI event packet")
        event = data[1]
        length = data[2]
        parameters = data[3:]
        if len(parameters) != length:
            raise ValueError("event length mismatch")
        return cls(event=event, parameters=parameters)


@dataclass(frozen=True)
class AclDataPacket:
    """One HCI ACL data packet (handle + packet-boundary flags)."""

    handle: int
    pb_flag: int  # 0b10 = start of L2CAP PDU, 0b01 = continuation
    payload: bytes = b""

    def encode(self) -> bytes:
        """Serialise to the H4 wire format."""
        if not 0 <= self.handle < (1 << 12):
            raise ValueError(f"ACL handle out of range: {self.handle}")
        if not 0 <= self.pb_flag <= 0b11:
            raise ValueError(f"PB flag out of range: {self.pb_flag}")
        word = self.handle | (self.pb_flag << 12)
        return (
            bytes([H4_ACL_DATA])
            + word.to_bytes(2, "little")
            + len(self.payload).to_bytes(2, "little")
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "AclDataPacket":
        if len(data) < 5 or data[0] != H4_ACL_DATA:
            raise ValueError("not an HCI ACL data packet")
        word = int.from_bytes(data[1:3], "little")
        length = int.from_bytes(data[3:5], "little")
        payload = data[5:]
        if len(payload) != length:
            raise ValueError("ACL length mismatch")
        return cls(handle=word & 0x0FFF, pb_flag=(word >> 12) & 0b11, payload=payload)


# -- convenience builders for the commands the PAN path issues --------------


def create_connection(bd_addr: bytes) -> CommandPacket:
    """HCI_Create_Connection toward ``bd_addr`` (6 bytes)."""
    if len(bd_addr) != 6:
        raise ValueError("BD_ADDR must be 6 bytes")
    # bd_addr, packet types (DM1|DH1|DM3|DH3|DM5|DH5), page scan modes,
    # clock offset, allow role switch.
    params = bd_addr + (0xCC18).to_bytes(2, "little") + bytes([0x01, 0x00]) + b"\x00\x00" + b"\x01"
    return CommandPacket(make_opcode(Ogf.LINK_CONTROL, Ocf.CREATE_CONNECTION), params)


def switch_role(bd_addr: bytes, to_master: bool) -> CommandPacket:
    """HCI_Switch_Role."""
    if len(bd_addr) != 6:
        raise ValueError("BD_ADDR must be 6 bytes")
    return CommandPacket(
        make_opcode(Ogf.LINK_POLICY, Ocf.SWITCH_ROLE),
        bd_addr + bytes([0x00 if to_master else 0x01]),
    )


def command_status(status: int, opcode: int) -> EventPacket:
    """HCI_Command_Status event for ``opcode``."""
    return EventPacket(
        EventCode.COMMAND_STATUS,
        bytes([status, 0x01]) + opcode.to_bytes(2, "little"),
    )


def connection_complete(status: int, handle: int, bd_addr: bytes) -> EventPacket:
    """HCI_Connection_Complete event."""
    if len(bd_addr) != 6:
        raise ValueError("BD_ADDR must be 6 bytes")
    return EventPacket(
        EventCode.CONNECTION_COMPLETE,
        bytes([status]) + handle.to_bytes(2, "little") + bd_addr + bytes([0x01, 0x00]),
    )


def parse_connection_complete(event: EventPacket) -> "tuple[int, int, bytes]":
    """Returns (status, handle, bd_addr) from a Connection Complete event."""
    if event.event != EventCode.CONNECTION_COMPLETE:
        raise ValueError("not a Connection Complete event")
    params = event.parameters
    if len(params) < 11:
        raise ValueError("truncated Connection Complete event")
    return params[0], int.from_bytes(params[1:3], "little"), params[3:9]


__all__ = [
    "H4_COMMAND",
    "H4_ACL_DATA",
    "H4_EVENT",
    "Ogf",
    "Ocf",
    "EventCode",
    "HciStatus",
    "make_opcode",
    "split_opcode",
    "CommandPacket",
    "EventPacket",
    "AclDataPacket",
    "create_connection",
    "switch_role",
    "command_status",
    "connection_complete",
    "parse_connection_complete",
]

"""Paper extensions: the enhanced stack bundle and redundant piconets."""

from .enhanced_stack import EnhancedStackConfig, run_enhanced_campaign
from .redundant import (
    FAILOVER_ACTION,
    FAILOVER_DURATION,
    FAILOVER_MAX_SCOPE,
    RedundantBlueTestClient,
    RedundantPanuNode,
    RedundantTestbed,
    run_redundant_campaign,
)

__all__ = [
    "EnhancedStackConfig",
    "run_enhanced_campaign",
    "RedundantBlueTestClient",
    "RedundantPanuNode",
    "RedundantTestbed",
    "run_redundant_campaign",
    "FAILOVER_ACTION",
    "FAILOVER_DURATION",
    "FAILOVER_MAX_SCOPE",
]

"""Redundant, overlapped piconets — the paper's future-work proposal.

For critical scenarios (wireless robot control, aircraft maintenance)
the paper concludes that "extensive fault tolerance techniques should be
adopted, such as using redundant, overlapped piconets, other than SIRAs
and masking".  This extension implements exactly that: every PANU is in
radio range of *two* NAPs (two overlapping piconets), stays attached to
the primary, and fails over to the backup when a failure's damage is
confined to the connection or the BT stack (severity <= 3, i.e. the
damage a different piconet genuinely routes around).  Deeper damage
(application or OS level) still goes through the SIRA cascade — no
amount of radio redundancy fixes a wedged host.
"""

from __future__ import annotations

from typing import Generator, List

from repro.bluetooth.channel import Channel, ChannelConfig
from repro.bluetooth.errors import BTError
from repro.bluetooth.stack import BluetoothStack
from repro.collection.log_analyzer import LogAnalyzer
from repro.collection.logs import SystemLog, TestLog
from repro.collection.records import RecoveryAttempt
from repro.collection.repository import CentralRepository
from repro.core.campaign import CampaignResult
from repro.recovery.masking import MaskingPolicy
from repro.sim import RandomStreams, Simulator, Timeout
from repro.testbed.node import LogNoise, NapNode, node_id
from repro.testbed.nodes import GIALLO, NodeProfile, PANU_PROFILES
from repro.workload.bluetest import BlueTestClient
from repro.workload.traffic import RandomWorkload, WorkloadModel

#: Name recorded for a successful piconet failover in recovery logs.
FAILOVER_ACTION = "piconet_failover"
#: Re-attaching to the overlapped piconet: page + L2CAP + BNEP + switch.
FAILOVER_DURATION = 2.0
#: Damage at or below this severity is confined to the link/stack and is
#: cleared by moving to the other piconet.
FAILOVER_MAX_SCOPE = 3

#: Profile of the second, overlapped NAP.
SECONDO = NodeProfile(
    name="Secondo",
    os="Linux",
    distribution="Mandrake",
    kernel="2.4.21-0.13mdk",
    cpu="P4 1.60GHz",
    ram_mb=128,
    bt_stack="BlueZ 2.10",
    bt_hardware="Anycom CC3030",
    transport="usb",
    distance=0.0,
    is_nap=True,
)


class RedundantBlueTestClient(BlueTestClient):
    """A BlueTest client backed by two overlapped piconets.

    Holds one full stack per NAP; ``self.stack`` is the active one.
    On a failure whose damage scope is link/stack-confined, the client
    fails over to the other stack instead of walking the SIRA cascade.
    """

    def __init__(self, backup_stack: BluetoothStack, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.backup_stack = backup_stack
        self.failovers = 0

    def _handle_failure(self, error: BTError, params, packet_type) -> Generator:
        scope = getattr(error, "scope", 1)
        if 1 <= scope <= FAILOVER_MAX_SCOPE:
            yield from self._failover(error, params, packet_type)
            return None
        yield from super()._handle_failure(error, params, packet_type)
        return None

    def _failover(self, error: BTError, params, packet_type) -> Generator:
        self.failovers += 1
        self.stats.failures += 1
        if self._connection is not None:
            self._connection.force_close()
            self._connection = None
        # The damaged stack is left behind; clean it for later fallback.
        self.stack.reset()
        self.stack, self.backup_stack = self.backup_stack, self.stack
        yield Timeout(FAILOVER_DURATION)
        attempt = RecoveryAttempt(
            action=FAILOVER_ACTION, succeeded=True, duration=FAILOVER_DURATION
        )
        self._record(error, params, packet_type, masked=False, attempts=[attempt])
        return None


class RedundantPanuNode:
    """One PANU attached to two overlapped piconets."""

    def __init__(
        self,
        sim: Simulator,
        profile: NodeProfile,
        primary: NapNode,
        backup: NapNode,
        injector,
        streams: RandomStreams,
        repository: CentralRepository,
        model: WorkloadModel,
        masking: MaskingPolicy,
        testbed_name: str,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.id = node_id(testbed_name, profile.name)
        self.system_log = SystemLog(
            self.id, streams.stream(f"syslog/{self.id}"), clock=lambda: sim.now
        )
        self.test_log = TestLog(self.id)

        def build_stack(nap: NapNode, tag: str) -> BluetoothStack:
            channel = Channel(
                ChannelConfig(distance=max(profile.distance, 0.1)),
                streams.stream(f"channel/{self.id}/{tag}"),
            )
            return BluetoothStack(
                sim,
                profile.traits,
                self.system_log,
                injector,
                streams.stream(f"stack/{self.id}/{tag}"),
                channel,
                nap.service,
                neighbourhood=[primary.profile.name, backup.profile.name],
                transport_kind=profile.transport,
            )

        primary_stack = build_stack(primary, "primary")
        backup_stack = build_stack(backup, "backup")
        self.client = RedundantBlueTestClient(
            backup_stack,
            sim,
            primary_stack,
            self.test_log,
            model,
            streams.stream(f"workload/{self.id}"),
            masking=masking,
            distance=profile.distance,
            testbed_name=testbed_name,
        )
        self.analyzer = LogAnalyzer(
            self.id,
            self.test_log,
            self.system_log,
            repository,
            phase=streams.stream(f"analyzer/{self.id}").uniform(0, 60),
        )
        self.noise = LogNoise(sim, self.system_log, streams.stream(f"noise/{self.id}"))

    def start(self) -> None:
        """Start the client, collection daemon and noise process."""
        from repro.sim import spawn

        self.client.start()
        self.analyzer.start(self.sim)
        spawn(self.sim, self.noise.run(), name=f"noise:{self.id}")


class RedundantTestbed:
    """A testbed whose PANUs see two overlapped piconets."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        model_factory,
        repository: CentralRepository,
        streams: RandomStreams,
        masking: MaskingPolicy = MaskingPolicy.all_off(),
    ) -> None:
        from repro.faults.injector import FaultInjector

        self.sim = sim
        self.name = name
        scoped = streams.fork(f"testbed/{name}")
        self.injector = FaultInjector(scoped.stream("injector"))
        self.primary = NapNode(sim, GIALLO, scoped, repository, name)
        self.backup = NapNode(sim, SECONDO, scoped.fork("backup"), repository, name)
        #: Alias so CampaignResult helpers treat this like a Testbed.
        self.nap = self.primary
        self.panus: List[RedundantPanuNode] = [
            RedundantPanuNode(
                sim, profile, self.primary, self.backup, self.injector,
                scoped, repository, model_factory(), masking, name,
            )
            for profile in PANU_PROFILES
        ]

    def start(self) -> None:
        """Start both NAPs and every redundant PANU."""
        self.primary.start()
        self.backup.start()
        for panu in self.panus:
            panu.start()

    def final_collection(self) -> None:
        """One last LogAnalyzer round on every node."""
        self.primary.analyzer.collect_once()
        self.backup.analyzer.collect_once()
        for panu in self.panus:
            panu.analyzer.collect_once()

    def clients(self):
        return [p.client for p in self.panus]

    def total_failovers(self) -> int:
        return sum(c.failovers for c in self.clients())


def run_redundant_campaign(
    duration: float,
    seed: int = 0,
    masking: MaskingPolicy = MaskingPolicy.all_off(),
) -> CampaignResult:
    """Run the random-workload testbed with redundant piconets."""
    sim = Simulator()
    streams = RandomStreams(seed)
    repository = CentralRepository()
    bed = RedundantTestbed(
        sim, "random", RandomWorkload, repository, streams, masking=masking
    )
    bed.start()
    sim.run_until(duration)
    bed.final_collection()
    return CampaignResult(
        duration=duration,
        seed=seed,
        masking=masking,
        repository=repository,
        testbeds={"random": bed},  # type: ignore[dict-item]
        sim=sim,
    )


def failover_replay_ttr(record) -> float:
    """TTR this failure would have under redundant piconets.

    Link/stack-scoped failures (severity <= FAILOVER_MAX_SCOPE) are
    cleared by a failover; deeper damage keeps its measured cascade
    cost.  Replaying a plain campaign's records through this function
    gives a same-failure-stream comparison, exactly like the paper's
    manual-scenario derivations.
    """
    from repro.core.sira_analysis import record_severity

    severity = record_severity(record)
    if severity is None:
        return 0.0
    if severity <= FAILOVER_MAX_SCOPE:
        return FAILOVER_DURATION
    return record.time_to_recover


def failover_replay_mttr(records) -> float:
    """Mean replayed TTR over recoverable failures."""
    from repro.core.sira_analysis import record_severity

    samples = [
        failover_replay_ttr(r)
        for r in records
        if record_severity(r) is not None
    ]
    return sum(samples) / len(samples) if samples else 0.0


__all__ = [
    "RedundantBlueTestClient",
    "RedundantPanuNode",
    "RedundantTestbed",
    "run_redundant_campaign",
    "failover_replay_ttr",
    "failover_replay_mttr",
    "FAILOVER_ACTION",
    "FAILOVER_DURATION",
    "FAILOVER_MAX_SCOPE",
    "SECONDO",
]

"""The "enhanced BlueZ" configuration.

The paper's conclusion: "At time of this writing we are carrying out an
enhanced version of the Linux BlueZ BT protocol stack, which includes
all the findings we gathered from the analysis."  This module packages
those findings as a deployable configuration:

* all three error masking strategies (bind wait, retry, SDP-before-PAN);
* an increased switch-role API timeout (the §4 suggestion for
  switch-role-request failures), carried as :class:`InjectorTuning`;
* the SIRA cascade as the recovery engine (always on in this library).

:func:`run_enhanced_campaign` runs a campaign with the whole bundle
applied, for comparison against a plain :func:`repro.run_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.collection.repository import CentralRepository
from repro.core.campaign import CampaignResult, DEFAULT_DURATION
from repro.faults.injector import InjectorTuning
from repro.recovery.masking import MaskingPolicy
from repro.sim import RandomStreams, Simulator
from repro.testbed.testbed import Testbed
from repro.workload.traffic import RandomWorkload, RealisticWorkload


@dataclass(frozen=True)
class EnhancedStackConfig:
    """Everything the paper's findings change about the stack."""

    masking: MaskingPolicy = field(default_factory=MaskingPolicy.all_on)
    tuning: InjectorTuning = field(
        default_factory=lambda: InjectorTuning(sw_role_timeout_factor=3.0)
    )

    @classmethod
    def plain(cls) -> "EnhancedStackConfig":
        """The stock stack: no masking, stock timeouts."""
        return cls(masking=MaskingPolicy.all_off(), tuning=InjectorTuning())


def run_enhanced_campaign(
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
    config: EnhancedStackConfig = None,
    workloads: Sequence[str] = ("random", "realistic"),
) -> CampaignResult:
    """Run a campaign whose testbeds use the enhanced-stack bundle."""
    config = config or EnhancedStackConfig()
    factories = {"random": RandomWorkload, "realistic": RealisticWorkload}
    sim = Simulator()
    streams = RandomStreams(seed)
    repository = CentralRepository()
    testbeds = {}
    for name in workloads:
        if name not in factories:
            raise ValueError(f"unknown workload: {name!r}")
        bed = Testbed(
            sim, name, factories[name], repository, streams,
            masking=config.masking,
        )
        bed.injector.tuning = config.tuning
        bed.start()
        testbeds[name] = bed
    sim.run_until(duration)
    for bed in testbeds.values():
        bed.final_collection()
    return CampaignResult(
        duration=duration,
        seed=seed,
        masking=config.masking,
        repository=repository,
        testbeds=testbeds,
        sim=sim,
    )


__all__ = ["EnhancedStackConfig", "run_enhanced_campaign"]

"""Error masking strategies (paper §4).

Three strategies were derived from the error-failure analysis:

* **Bind wait** — wait for T_C (valid L2CAP handle) and T_H (BNEP
  interface configured by hotplug) before binding the IP socket, which
  removes the race behind "Bind failed".
* **Retry** — switch-role-command, NAP-not-found and SDP-search failures
  stem from a multitude of transient causes; repeating the action up to
  2 times with a 1 s wait lets the transient cause disappear.
* **SDP-before-PAN** — avoid service caching: performing the SDP search
  right before the PAN connection removes the stale-record failures
  that make up 96.5 % of PAN-connect failures.

The :class:`MaskingPolicy` tells the workload which strategies are on
and adjudicates retry attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.core.failure_model import UserFailureType
from repro.faults import calibration as cal
from repro.sim import Timeout

#: Failure types the retry strategy applies to.
RETRYABLE = frozenset(
    {
        UserFailureType.SW_ROLE_COMMAND_FAILED,
        UserFailureType.NAP_NOT_FOUND,
        UserFailureType.SDP_SEARCH_FAILED,
    }
)


@dataclass(frozen=True)
class MaskingPolicy:
    """Which masking strategies are enabled."""

    bind_wait: bool = False  # wait for T_C and T_H before bind
    retry: bool = False  # repeat transient-failure commands
    sdp_before_pan: bool = False  # always search before connecting

    @classmethod
    def all_on(cls) -> "MaskingPolicy":
        return cls(bind_wait=True, retry=True, sdp_before_pan=True)

    @classmethod
    def all_off(cls) -> "MaskingPolicy":
        return cls()

    @property
    def any_enabled(self) -> bool:
        return self.bind_wait or self.retry or self.sdp_before_pan

    def applies_retry(self, failure: UserFailureType) -> bool:
        return self.retry and failure in RETRYABLE


class RetryMasker:
    """Executes the retry strategy and tracks masking statistics."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.masked = 0
        self.unmasked = 0

    def attempt_mask(self, failure: UserFailureType, policy: MaskingPolicy) -> Generator:
        """Retry a failed transient command.

        Returns True when one of the retries cleared the transient
        cause (the failure is *masked*: the user never saw it), False
        when the retries were exhausted and the failure stands.
        """
        if not policy.applies_retry(failure):
            return False
        for _ in range(cal.RETRY_MASK_ATTEMPTS):
            yield Timeout(cal.RETRY_MASK_WAIT)
            if self._rng.random() < cal.RETRY_MASK_EFFECTIVENESS:
                self.masked += 1
                return True
        self.unmasked += 1
        return False


__all__ = ["MaskingPolicy", "RetryMasker", "RETRYABLE"]

"""Failure detection, recovery actions (SIRAs) and error masking."""

from .sira import RecoveryEngine, SiraAction, SIRA_NAMES, standard_actions
from .masking import MaskingPolicy, RetryMasker, RETRYABLE

__all__ = [
    "RecoveryEngine",
    "SiraAction",
    "SIRA_NAMES",
    "standard_actions",
    "MaskingPolicy",
    "RetryMasker",
    "RETRYABLE",
]

"""Software-Implemented Recovery Actions (SIRAs).

Upon failure detection, recovery actions are attempted *in cascade*,
ordered by increasing cost (paper §4): when the i-th action does not
succeed, the (i+1)-th is performed.  The action that finally clears the
failure measures the failure's *severity*.

Success is determined by the fault's hidden damage scope (sampled at
injection time and carried on the exception): an action succeeds iff
its level reaches the scope.  The workload records every attempt, so
the analysis side can re-derive Table 3 from the logs alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.bluetooth.errors import BTError
from repro.collection.records import RecoveryAttempt
from repro.faults import calibration as cal
from repro.sim import SleepUntil, Simulator, Timeout

#: Canonical SIRA names, in cascade order (levels 1..7).
SIRA_NAMES: List[str] = [
    "ip_socket_reset",
    "bt_connection_reset",
    "bt_stack_reset",
    "application_restart",
    "multiple_application_restart",
    "system_reboot",
    "multiple_system_reboot",
]


@dataclass(frozen=True)
class SiraAction:
    """One recovery action: its level, name, and duration model."""

    level: int
    name: str
    base_duration: float
    max_repeats: int = 1

    def sample_duration(self, rng: random.Random) -> float:
        """Duration of one attempt (multiple-X actions repeat the base)."""
        if self.max_repeats <= 1:
            return self.base_duration
        repeats = rng.randint(2, self.max_repeats)
        return self.base_duration * repeats


def standard_actions() -> List[SiraAction]:
    """The paper's seven SIRAs with calibrated durations."""
    durations = cal.SIRA_DURATIONS
    return [
        SiraAction(1, SIRA_NAMES[0], durations[0]),
        SiraAction(2, SIRA_NAMES[1], durations[1]),
        SiraAction(3, SIRA_NAMES[2], durations[2]),
        SiraAction(4, SIRA_NAMES[3], durations[3]),
        SiraAction(5, SIRA_NAMES[4], durations[4], max_repeats=cal.MAX_APP_RESTARTS),
        SiraAction(6, SIRA_NAMES[5], durations[5]),
        SiraAction(7, SIRA_NAMES[6], durations[6], max_repeats=cal.MAX_SYSTEM_REBOOTS),
    ]


class RecoveryEngine:
    """Runs the SIRA cascade for one node's workload.

    ``side_effect`` is invoked with the level of every *attempted*
    action so the owning node can apply the matching state clearing
    (drop the connection, reset the stack, restart the app, reboot).
    """

    def __init__(
        self,
        rng: random.Random,
        side_effect: Optional[Callable[[int], None]] = None,
        actions: Optional[List[SiraAction]] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self._rng = rng
        self._side_effect = side_effect or (lambda level: None)
        self.actions = actions or standard_actions()
        self._sim = sim
        self.recoveries = 0
        self.unrecovered = 0

    def recover(self, error: BTError) -> Generator:
        """Run the cascade until the failure clears.

        Returns the list of :class:`RecoveryAttempt` records (empty when
        the failure defines no recovery, e.g. data mismatch).

        When constructed with a simulator, consecutive attempts are
        *wait-chained*: the cascade's outcome is fully determined by the
        fault's damage scope, so the durations can be drawn up front (in
        cascade order, preserving the RNG stream) and slept through in
        one wake-up at the bit-identical final instant.  State-clearing
        side effects are applied, in cascade order, at that wake-up; a
        system reboot (level >= 6) writes a timestamped boot line, so
        the chain always breaks there to keep that timestamp in place.
        """
        attempts: List[RecoveryAttempt] = []
        scope = getattr(error, "scope", 1)
        if scope <= 0:
            return attempts  # no recovery defined (data mismatch)
        sim = self._sim
        if sim is None:
            # Stepwise cascade for engines wired without a simulator.
            for action in self.actions:
                duration = action.sample_duration(self._rng)
                yield Timeout(duration)
                self._side_effect(action.level)
                succeeded = action.level >= scope
                attempts.append(
                    RecoveryAttempt(
                        action=action.name, succeeded=succeeded, duration=duration
                    )
                )
                if succeeded:
                    self.recoveries += 1
                    return attempts
            self.unrecovered += 1
            return attempts
        deadline = sim.now
        pending: List[int] = []  # levels whose side effects are due at the wake
        for action in self.actions:
            duration = action.sample_duration(self._rng)
            deadline += duration
            succeeded = action.level >= scope
            attempts.append(
                RecoveryAttempt(action=action.name, succeeded=succeeded, duration=duration)
            )
            pending.append(action.level)
            if succeeded or action.level >= 6:
                yield SleepUntil(deadline)
                for level in pending:
                    self._side_effect(level)
                pending.clear()
                if succeeded:
                    self.recoveries += 1
                    return attempts
        if pending:
            yield SleepUntil(deadline)
            for level in pending:
                self._side_effect(level)
        self.unrecovered += 1
        return attempts

    @staticmethod
    def severity(attempts: List[RecoveryAttempt]) -> Optional[int]:
        """Severity = level of the action that succeeded (paper §4)."""
        for index, attempt in enumerate(attempts, start=1):
            if attempt.succeeded:
                return index
        return None


__all__ = ["RecoveryEngine", "SiraAction", "SIRA_NAMES", "standard_actions"]

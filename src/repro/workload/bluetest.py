"""The BlueTest workload client.

One client runs on every PANU.  Each cycle it emulates a BT user:
inquiry/scan (if S), SDP search (if SDP), PAN connect + bind when no
connection is up, data transfer against the BlueTest server on the NAP,
disconnect when the connection's cycle budget is exhausted, then a
Pareto-distributed passive off time.

The client is *instrumented*: every failure produces a Test Log report
with the node status, and triggers either a masking strategy or the
SIRA cascade.  It also keeps the aggregate cycle statistics (cycles per
packet type, idle times before failed/failure-free cycles) that the
paper's §6 analyses need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.bluetooth.errors import BTError
from repro.bluetooth.packets import PacketType
from repro.bluetooth.pan import PanConnection
from repro.bluetooth.stack import BluetoothStack
from repro.collection.logs import TestLog
from repro.collection.messages import render_user_message
from repro.collection.records import TestLogRecord, _add_slots
from repro.obs.trace import CLASSIFICATION_LAYER, get_tracer
from repro.recovery.masking import MaskingPolicy, RetryMasker
from repro.recovery.sira import RecoveryEngine
from repro.sim import Simulator, Timeout, spawn
from .traffic import CycleParams, WorkloadModel

#: Packet type the BT stack itself picks when the workload leaves the
#: choice open (realistic WL): the highest-throughput ACL type.
STACK_CHOICE = PacketType.DH5


@_add_slots
@dataclass
class CycleStats:
    """Aggregate per-client counters for the §6 analyses.

    Mutated once per cycle on the campaign hot path, hence the
    ``__slots__`` (added post-hoc for py3.9 compatibility).
    """

    cycles: int = 0
    failures: int = 0
    masked: int = 0
    cycles_by_packet_type: Dict[str, int] = field(default_factory=dict)
    idle_ok_sum: float = 0.0
    idle_ok_count: int = 0
    idle_fail_sum: float = 0.0
    idle_fail_count: int = 0

    def note_cycle_type(self, packet_type: PacketType) -> None:
        key = packet_type.code
        self.cycles_by_packet_type[key] = self.cycles_by_packet_type.get(key, 0) + 1

    @property
    def mean_idle_ok(self) -> float:
        return self.idle_ok_sum / self.idle_ok_count if self.idle_ok_count else 0.0

    @property
    def mean_idle_fail(self) -> float:
        return self.idle_fail_sum / self.idle_fail_count if self.idle_fail_count else 0.0


class BlueTestClient:
    """The instrumented PANU-side workload of one node."""

    def __init__(
        self,
        sim: Simulator,
        stack: BluetoothStack,
        test_log: TestLog,
        model: WorkloadModel,
        rng: random.Random,
        masking: MaskingPolicy = MaskingPolicy.all_off(),
        distance: float = 1.0,
        testbed_name: str = "random",
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.test_log = test_log
        self.model = model
        self.rng = rng
        self.masking = masking
        self.distance = distance
        self.testbed_name = testbed_name
        self.stats = CycleStats()
        self.retry_masker = RetryMasker(rng)
        self.recovery = RecoveryEngine(
            rng, side_effect=self._recovery_side_effect, sim=sim
        )
        self._connection: Optional[PanConnection] = None
        self._cycles_left_on_connection = 0
        self._cycle_index_on_connection = 0

    # -- main loop -----------------------------------------------------------

    def run(self) -> Generator:
        """The 24/7 workload process.

        The per-cycle bookkeeping *and* the cycle body of
        :meth:`run_cycle`/:meth:`_cycle_body` are inlined here (keep
        them in sync): the loop resumes once per simulated event, so
        one long-lived generator frame replaces the run -> run_cycle ->
        _cycle_body delegation chain.  :meth:`run_cycle` remains the
        entry point for driving a single cycle directly.
        """
        stats = self.stats
        model = self.model
        rng = self.rng
        masking = self.masking
        stack = self.stack
        pan = stack.pan
        counts = stats.cycles_by_packet_type
        while True:
            params = model.next_cycle(rng)
            yield Timeout(params.idle_time)
            stats.cycles += 1
            connection = self._connection
            had_connection = connection is not None and connection.alive
            packet_type = params.packet_type or STACK_CHOICE
            key = packet_type.code
            counts[key] = counts.get(key, 0) + 1
            failed = False
            try:
                if not had_connection:
                    # Cycles that continue an established connection
                    # skip the search phases — the point of exploiting
                    # caching (paper §3).
                    if params.scan_flag:
                        yield from stack.inquiry()
                    did_sdp = False
                    if params.sdp_flag or masking.sdp_before_pan:
                        yield from stack.sdp_search_nap()
                        did_sdp = True
                    if connection is not None:
                        connection.force_close()
                        self._connection = None
                    connection = yield from pan.connect(sdp_performed=did_sdp)
                    self._connection = connection
                    self._cycles_left_on_connection = model.cycles_per_connection(rng)
                    self._cycle_index_on_connection = 0
                    # Application set-up work before the socket is bound.
                    yield Timeout(rng.uniform(0.5, 2.0))
                    yield from pan.bind(connection, wait_ready=masking.bind_wait)
                self._cycle_index_on_connection += 1
                yield from self._connection.transfer(
                    packet_type,
                    params.n_logical,
                    params.send_size,
                    params.recv_size,
                    application=params.application,
                )
                self._cycles_left_on_connection -= 1
                if self._cycles_left_on_connection <= 0:
                    yield from self._connection.disconnect()
                    self._connection = None
            except BTError as error:
                failed = True
                yield from self._handle_failure(error, params, packet_type)
            if had_connection:
                # Idle-time bookkeeping only counts T_W between
                # consecutive cycles on the same connection (§6, fn. 8).
                if failed:
                    stats.idle_fail_sum += params.idle_time
                    stats.idle_fail_count += 1
                else:
                    stats.idle_ok_sum += params.idle_time
                    stats.idle_ok_count += 1

    def start(self, sim: Optional[Simulator] = None):
        """Spawn the client's run loop; returns the process handle."""
        return spawn(sim or self.sim, self.run(), name=f"bluetest:{self.node_name}")

    @property
    def node_name(self) -> str:
        return self.stack.traits.name

    def run_cycle(self, params: CycleParams) -> Generator:
        """Execute one BlueTest cycle; failures are handled internally."""
        self.stats.cycles += 1
        had_connection = self._connection is not None and self._connection.alive
        packet_type = params.packet_type or STACK_CHOICE
        self.stats.note_cycle_type(packet_type)
        failed = False
        try:
            yield from self._cycle_body(params, packet_type)
        except BTError as error:
            failed = True
            yield from self._handle_failure(error, params, packet_type)
        if had_connection:
            # Idle-time bookkeeping only counts T_W between consecutive
            # cycles on the same connection (paper §6, footnote 8).
            if failed:
                self.stats.idle_fail_sum += params.idle_time
                self.stats.idle_fail_count += 1
            else:
                self.stats.idle_ok_sum += params.idle_time
                self.stats.idle_ok_count += 1
        return None

    def _cycle_body(self, params: CycleParams, packet_type: PacketType) -> Generator:
        needs_connection = self._connection is None or not self._connection.alive
        # Cycles that continue an established connection skip the
        # search phases — the point of exploiting caching (paper §3);
        # the Random WL tears its connection down every cycle, so it
        # searches (flags permitting) every time.
        if needs_connection and params.scan_flag:
            yield from self.stack.inquiry()
        did_sdp = False
        if needs_connection and (params.sdp_flag or self.masking.sdp_before_pan):
            yield from self.stack.sdp_search_nap()
            did_sdp = True
        if needs_connection:
            if self._connection is not None:
                self._connection.force_close()
                self._connection = None
            connection = yield from self.stack.pan.connect(sdp_performed=did_sdp)
            self._connection = connection
            self._cycles_left_on_connection = self.model.cycles_per_connection(self.rng)
            self._cycle_index_on_connection = 0
            # Application set-up work before the socket is bound.
            yield Timeout(self.rng.uniform(0.5, 2.0))
            yield from self.stack.pan.bind(connection, wait_ready=self.masking.bind_wait)
        self._cycle_index_on_connection += 1
        yield from self._connection.transfer(
            packet_type,
            params.n_logical,
            params.send_size,
            params.recv_size,
            application=params.application,
        )
        self._cycles_left_on_connection -= 1
        if self._cycles_left_on_connection <= 0:
            yield from self._connection.disconnect()
            self._connection = None
        return None

    # -- failure handling ------------------------------------------------------

    def _handle_failure(
        self, error: BTError, params: CycleParams, packet_type: PacketType
    ) -> Generator:
        failure = error.user_failure
        if failure is None:
            raise error  # protocol-invariant violation: a genuine bug
        masked = False
        if self.masking.applies_retry(failure):
            masked = yield from self.retry_masker.attempt_mask(failure, self.masking)
        if masked:
            self.stats.masked += 1
            self._record(error, params, packet_type, masked=True, attempts=())
            return None
        self.stats.failures += 1
        attempts = yield from self.recovery.recover(error)
        self._record(error, params, packet_type, masked=False, attempts=attempts)
        return None

    def _record(self, error, params, packet_type, masked, attempts) -> None:
        """Write the Test Log report and close the propagation trace."""
        self._close_trace(error, masked)
        record = TestLogRecord(
            time=self.sim.now,
            node=self.test_log.node,  # "<testbed>:<host>", matching the system log
            testbed=self.testbed_name,
            workload=params.application,
            message=render_user_message(self.rng, error.user_failure),
            phase=error.user_failure.group.value,
            packet_type=packet_type.value,
            packets_sent=getattr(error, "packets_sent", 0),
            packets_expected=params.n_logical,
            scan_flag=params.scan_flag,
            sdp_flag=params.sdp_flag,
            distance=self.distance,
            cycle_on_connection=self._cycle_index_on_connection,
            idle_before_cycle=params.idle_time,
            masked=masked,
            recovery=attempts,
        )
        self.test_log.append(record)

    def _close_trace(self, error: BTError, masked: bool) -> None:
        """Stamp the user-level classification onto the error's trace span.

        The classification event is the last hop of the propagation
        chain (channel → baseband → L2CAP/BNEP → classification); the
        span is then closed with the failure/masked verdict.
        """
        trace_id = getattr(error, "trace_id", 0)
        tracer = get_tracer()
        if not (tracer.enabled and trace_id):
            return
        failure = error.user_failure.name.lower()
        tracer.event(
            trace_id,
            layer=CLASSIFICATION_LAYER,
            what=failure,
            node=self.node_name,
            masked=masked,
        )
        tracer.end_span(trace_id, status="masked" if masked else "failure")

    def _recovery_side_effect(self, level: int) -> None:
        """State clearing applied as each SIRA level is attempted."""
        if level >= 2 and self._connection is not None:
            self._connection.force_close()
            self._connection = None
        if level >= 3:
            self.stack.reset()
        if level >= 4:
            # Application restart: all client-side session state is gone.
            self.stack.sdp.invalidate()
            self._cycles_left_on_connection = 0
        if level >= 6:
            self.stack.host.note_reboot()
            self.stack.reset()
            self.stack.system_log.set_time(self.sim.now)
            self.stack.system_log.info("kernel", "kernel: system boot")


__all__ = ["BlueTestClient", "CycleStats", "STACK_CHOICE"]

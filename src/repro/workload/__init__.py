"""BlueTest workloads: random, realistic, and the fixed-length variant."""

from .traffic import (
    CycleParams,
    FixedLengthWorkload,
    RandomWorkload,
    RealisticWorkload,
    REALISTIC_APPLICATIONS,
    WorkloadModel,
    TCP_MSS,
)
from .bluetest import BlueTestClient, CycleStats, STACK_CHOICE

__all__ = [
    "CycleParams",
    "WorkloadModel",
    "RandomWorkload",
    "RealisticWorkload",
    "FixedLengthWorkload",
    "REALISTIC_APPLICATIONS",
    "TCP_MSS",
    "BlueTestClient",
    "CycleStats",
    "STACK_CHOICE",
]

"""Workload traffic models.

Each BlueTest cycle is parameterised by the random variables of paper
§3: S (scan flag), SDP (service-discovery flag), B (Baseband packet
type), N (number of packets), L_S/L_R (sent/received packet sizes) and
T_W (the user's passive off time, Pareto distributed after Crovella &
Bestavros).  Two model families exist:

* :class:`RandomWorkload` — totally random draws (uniform N and sizes,
  binomial packet-type selection) to stimulate the channel with every
  packet type irrespective of any real application.
* :class:`RealisticWorkload` — parameters drawn from the random
  processes that model actual Internet traffic (power-law resource
  sizes per application class, transport-typical PDUs, 1–20 consecutive
  cycles per connection).
"""

from __future__ import annotations

import random
from typing import NamedTuple, Optional, Tuple

from repro.bluetooth.packets import PACKET_TYPE_ORDER, PacketType
from repro.sim.distributions import (
    BoundedPareto,
    LogNormal,
    Pareto,
    UniformInt,
    bernoulli,
    binomial_choice,
)

#: The user passive off time: Pareto with shape 1.5 (paper footnote 8).
IDLE_SHAPE = 1.5
IDLE_SCALE = 10.0  # xm, seconds
IDLE_CAP = 600.0  # cap the heavy tail so cycles keep coming
_IDLE_PARETO = Pareto(IDLE_SHAPE, IDLE_SCALE)

#: Typical transport PDU on the Internet path (TCP MSS).
TCP_MSS = 1460

#: Flag probabilities (uniform, per the paper).
P_SCAN = 0.5
P_SDP = 0.5


class CycleParams(NamedTuple):
    """The random variables of one BlueTest cycle.

    A named tuple rather than a (frozen) dataclass: one is built per
    cycle on the campaign hot path, and tuple construction skips the
    per-field ``object.__setattr__`` a frozen dataclass pays.
    """

    scan_flag: bool
    sdp_flag: bool
    packet_type: Optional[PacketType]  # None: left to the BT stack
    n_logical: int  # N: number of logical packets to exchange
    send_size: int  # L_S (bytes)
    recv_size: int  # L_R (bytes)
    idle_time: float  # T_W (seconds)
    application: str


class WorkloadModel:
    """Base class of the BlueTest parameter generators."""

    #: Testbed label recorded on every failure report.
    name = "abstract"

    def next_cycle(self, rng: random.Random) -> CycleParams:
        raise NotImplementedError

    def cycles_per_connection(self, rng: random.Random) -> int:
        """How many consecutive cycles reuse one PAN connection."""
        return 1

    @staticmethod
    def _idle(rng: random.Random) -> float:
        return min(IDLE_CAP, _IDLE_PARETO.sample(rng))


class RandomWorkload(WorkloadModel):
    """Totally random channel stimulation (the paper's first testbed)."""

    name = "random"

    def __init__(
        self,
        n_range: Tuple[int, int] = (1, 360),
        size_range: Tuple[int, int] = (64, 1691),
    ) -> None:
        self._n = UniformInt(*n_range)
        self._size = UniformInt(*size_range)

    def next_cycle(self, rng: random.Random) -> CycleParams:
        """Draw one cycle's parameters (uniform/binomial, per the paper)."""
        return CycleParams(
            scan_flag=bernoulli(rng, P_SCAN),
            sdp_flag=bernoulli(rng, P_SDP),
            packet_type=binomial_choice(rng, PACKET_TYPE_ORDER),
            n_logical=self._n.sample(rng),
            send_size=self._size.sample(rng),
            recv_size=self._size.sample(rng),
            idle_time=self._idle(rng),
            application="random",
        )


#: Resource-size models per emulated application (bytes).  Heavy-tailed
#: per Crovella & Bestavros; caps keep one draw within what a PAN
#: session plausibly moves.
_WEB_SIZE = BoundedPareto(alpha=1.3, xm=2_000, cap=2_000_000)
_MAIL_SIZE = LogNormal(mu=9.2, sigma=1.2)  # median ~10 kB
_FTP_SIZE = BoundedPareto(alpha=1.1, xm=30_000, cap=2_000_000)
_P2P_SIZE = BoundedPareto(alpha=1.1, xm=256_000, cap=6_000_000)
_STREAM_RATE = 16_000  # bytes/s (128 kbit/s audio/video)
_STREAM_DURATION = (20.0, 90.0)  # seconds

REALISTIC_APPLICATIONS = ("web", "mail", "ftp", "p2p", "streaming")


class RealisticWorkload(WorkloadModel):
    """IP-application emulation (the paper's second testbed)."""

    name = "realistic"

    def __init__(self, applications: Tuple[str, ...] = REALISTIC_APPLICATIONS) -> None:
        if not applications:
            raise ValueError("need at least one application")
        self.applications = applications

    def next_cycle(self, rng: random.Random) -> CycleParams:
        """Draw one cycle emulating a random Internet application."""
        application = rng.choice(self.applications)
        resource_bytes = self._resource_size(rng, application)
        n_logical = max(1, int(resource_bytes // TCP_MSS))
        send, recv = self._pdu_sizes(application)
        return CycleParams(
            scan_flag=bernoulli(rng, P_SCAN),
            sdp_flag=bernoulli(rng, P_SDP),
            packet_type=None,  # the BT stack chooses
            n_logical=n_logical,
            send_size=send,
            recv_size=recv,
            idle_time=self._idle(rng),
            application=application,
        )

    def cycles_per_connection(self, rng: random.Random) -> int:
        # "the WL runs from 1 up to 20 consecutive cycles over the same
        # connection"
        return rng.randint(1, 20)

    @staticmethod
    def _resource_size(rng: random.Random, application: str) -> float:
        if application == "web":
            return _WEB_SIZE.sample(rng)
        if application == "mail":
            return min(_MAIL_SIZE.sample(rng), 5_000_000)
        if application == "ftp":
            return _FTP_SIZE.sample(rng)
        if application == "p2p":
            return _P2P_SIZE.sample(rng)
        if application == "streaming":
            return rng.uniform(*_STREAM_DURATION) * _STREAM_RATE
        raise ValueError(f"unknown application: {application!r}")

    @staticmethod
    def _pdu_sizes(application: str) -> Tuple[int, int]:
        """(L_S, L_R): request-out / data-back PDU sizes per application."""
        if application in ("web", "mail"):
            return 350, TCP_MSS
        if application == "ftp":
            return 64, TCP_MSS
        if application == "p2p":
            return TCP_MSS, TCP_MSS  # symmetric exchange
        if application == "streaming":
            return 64, 1400  # RTP-sized media packets
        raise ValueError(f"unknown application: {application!r}")


class FixedLengthWorkload(WorkloadModel):
    """The special random-WL variant of the figure-3b experiment.

    N fixed to 10000 packets; L_S and L_R fixed to 1691 bytes (the BNEP
    MTU), "in order to not introduce indetermination when estimating
    the failing connection length".
    """

    name = "random"

    def __init__(self, n_logical: int = 10_000, size: int = 1691) -> None:
        self.n_logical = n_logical
        self.size = size

    def next_cycle(self, rng: random.Random) -> CycleParams:
        """Draw one fixed-length cycle (only flags and T_W vary)."""
        return CycleParams(
            scan_flag=bernoulli(rng, P_SCAN),
            sdp_flag=bernoulli(rng, P_SDP),
            packet_type=binomial_choice(rng, PACKET_TYPE_ORDER),
            n_logical=self.n_logical,
            send_size=self.size,
            recv_size=self.size,
            idle_time=self._idle(rng),
            application="random",
        )


__all__ = [
    "CycleParams",
    "WorkloadModel",
    "RandomWorkload",
    "RealisticWorkload",
    "FixedLengthWorkload",
    "REALISTIC_APPLICATIONS",
    "TCP_MSS",
    "P_SCAN",
    "P_SDP",
]

"""Discrete-event simulation substrate (engine, processes, RNG, distributions)."""

from .engine import EventHandle, SimulationError, Simulator
from .process import Interrupt, Process, SimEvent, SleepUntil, Timeout, spawn
from .rng import RandomStreams, derive_seed
from .distributions import (
    BoundedPareto,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
    UniformInt,
    Weibull,
    bernoulli,
    binomial_choice,
    weighted_choice,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Process",
    "SimEvent",
    "Timeout",
    "SleepUntil",
    "Interrupt",
    "spawn",
    "RandomStreams",
    "derive_seed",
    "Pareto",
    "BoundedPareto",
    "Uniform",
    "UniformInt",
    "Exponential",
    "Weibull",
    "LogNormal",
    "bernoulli",
    "binomial_choice",
    "weighted_choice",
]

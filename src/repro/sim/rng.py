"""Seeded, named random-number streams.

Every stochastic component of the testbed (each channel, each fault model,
each workload) draws from its own named substream derived from a single
master seed.  This gives reproducible campaigns in which changing one
component's consumption of randomness does not perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that stream names with common prefixes still get
    statistically independent seeds.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def numpy_generator(master_seed: int, name: str) -> Any:
    """A ``numpy.random.Generator`` on the named substream.

    This is the sanctioned constructor for bulk (vectorised) draws: the
    PCG64 bit generator is seeded with the same prefix-stable SHA-256
    derivation as the scalar :class:`random.Random` streams, so batch
    and bit executors share one seed space and sweeps stay merge-stable
    at any ``--jobs``.  numpy is imported lazily so the scalar engine
    keeps zero hard dependency on it.
    """
    from numpy.random import Generator, PCG64

    return Generator(PCG64(derive_seed(master_seed, name)))


class RandomStreams:
    """A factory of named, independently seeded :class:`random.Random` streams.

    Streams are memoized: asking for the same name twice returns the same
    generator object (so sequential draws continue the stream).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, Any] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose master seed is derived from ``name``.

        Useful to give a whole subsystem (e.g. one testbed) its own seed
        space.
        """
        return RandomStreams(derive_seed(self.master_seed, name))

    def numpy_stream(self, name: str) -> Any:
        """The memoised ``numpy.random.Generator`` for ``name``.

        Sequential bulk draws continue the stream, mirroring
        :meth:`stream` for the vectorised (batch-fidelity) path.
        """
        gen = self._numpy_streams.get(name)
        if gen is None:
            gen = numpy_generator(self.master_seed, name)
            self._numpy_streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams or name in self._numpy_streams


__all__ = ["RandomStreams", "derive_seed", "numpy_generator"]

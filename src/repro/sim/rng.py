"""Seeded, named random-number streams.

Every stochastic component of the testbed (each channel, each fault model,
each workload) draws from its own named substream derived from a single
master seed.  This gives reproducible campaigns in which changing one
component's consumption of randomness does not perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that stream names with common prefixes still get
    statistically independent seeds.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independently seeded :class:`random.Random` streams.

    Streams are memoized: asking for the same name twice returns the same
    generator object (so sequential draws continue the stream).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose master seed is derived from ``name``.

        Useful to give a whole subsystem (e.g. one testbed) its own seed
        space.
        """
        return RandomStreams(derive_seed(self.master_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams


__all__ = ["RandomStreams", "derive_seed"]

"""Probability distributions used by the workloads and fault models.

The paper's workloads draw from uniform, binomial, and Pareto
distributions (the latter for user "passive off" think times and for
Internet resource sizes, following Crovella & Bestavros).  Fault models
additionally use exponential and Weibull hazards.

All samplers take an explicit :class:`random.Random` so callers control
the stream (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class Pareto:
    """Pareto distribution with shape ``alpha`` and scale ``xm`` (minimum).

    The paper models user passive off-time as Pareto with shape 1.5
    (section 6, footnote 8), and Internet resource sizes as power laws.
    """

    alpha: float
    xm: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.xm <= 0:
            raise ValueError("Pareto requires alpha > 0 and xm > 0")

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF: xm * U^(-1/alpha)
        u = 1.0 - rng.random()
        return self.xm * u ** (-1.0 / self.alpha)

    def mean(self) -> float:
        """Theoretical mean (infinite when alpha <= 1)."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto truncated to [xm, cap]; used for resource sizes so a single
    draw cannot exceed what a session could plausibly transfer."""

    alpha: float
    xm: float
    cap: float

    def __post_init__(self) -> None:
        if not (0 < self.xm < self.cap):
            raise ValueError("BoundedPareto requires 0 < xm < cap")
        if self.alpha <= 0:
            raise ValueError("BoundedPareto requires alpha > 0")

    def sample(self, rng: random.Random) -> float:
        """Inverse-CDF sample of the truncated Pareto."""
        a, l, h = self.alpha, self.xm, self.cap
        u = rng.random()
        ratio = (l / h) ** a
        return l / (1.0 - u * (1.0 - ratio)) ** (1.0 / a)


@dataclass(frozen=True)
class Uniform:
    """Continuous uniform over [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("Uniform requires high >= low")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class UniformInt:
    """Discrete uniform over {low, ..., high} inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("UniformInt requires high >= low")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)


@dataclass(frozen=True)
class Exponential:
    """Exponential with rate ``lam`` (mean 1/lam); memoryless hazard."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError("Exponential requires lam > 0")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.lam)

    def mean(self) -> float:
        return 1.0 / self.lam


@dataclass(frozen=True)
class Weibull:
    """Weibull with scale ``scale`` and shape ``shape``.

    shape < 1 models infant-mortality hazards (e.g. young connections
    failing more, as observed in figure 3b of the paper); shape > 1
    models wear-out.
    """

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.shape <= 0:
            raise ValueError("Weibull requires scale > 0 and shape > 0")

    def sample(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class LogNormal:
    """Log-normal with parameters of the underlying normal."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("LogNormal requires sigma > 0")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


def bernoulli(rng: random.Random, p: float) -> bool:
    """Single biased coin flip with success probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    return rng.random() < p


def binomial_choice(
    rng: random.Random,
    items: Sequence[ItemT],
    n: Optional[int] = None,
    p: float = 0.5,
) -> ItemT:
    """Pick an item by a Binomial(n, p) index, clamped to the sequence.

    The paper chooses the Baseband packet type 'according to a binomial
    distribution' over the six types; this reproduces that selection rule.
    """
    if not items:
        raise ValueError("empty choice sequence")
    if n is None:
        n = len(items) - 1
    idx = 0
    rng_random = rng.random
    for _ in range(n):
        if rng_random() < p:
            idx += 1
    return items[min(idx, len(items) - 1)]


def weighted_choice(
    rng: random.Random, items: Sequence[ItemT], weights: Sequence[float]
) -> ItemT:
    """Pick an item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    r = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        if w < 0:
            raise ValueError("weights must be non-negative")
        acc += w
        if r < acc:
            return item
    return items[-1]


__all__ = [
    "Pareto",
    "BoundedPareto",
    "Uniform",
    "UniformInt",
    "Exponential",
    "Weibull",
    "LogNormal",
    "bernoulli",
    "binomial_choice",
    "weighted_choice",
]

"""Discrete-event simulation engine.

The engine is a deterministic, single-threaded event loop over a binary
heap of timestamped events.  Simulated time is a float number of seconds.
Determinism is guaranteed by a monotonically increasing sequence number
used as a tie-breaker for events scheduled at the same instant.

The engine knows nothing about Bluetooth; it only runs callbacks and
generator-based processes (see :mod:`repro.sim.process`).  The hot loop
is tuned for campaign-scale runs (hundreds of thousands of events):

* Heap entries are plain ``(time, priority, seq, event)`` tuples, so the
  heap siftup/siftdown comparisons run entirely in C — no Python-level
  ``__lt__`` is ever invoked on an event.
* Events carry ``__slots__`` and the engine keeps a **free-list**:
  one-shot events flagged as recyclable (the process-timeout fast path,
  :meth:`Simulator._schedule_timeout`) are returned to the free-list as
  they are popped and reused by later schedules instead of reallocated.
* :meth:`Simulator.schedule_periodic` arms a timer-wheel-style periodic
  event that **re-arms itself in place** — the same event object is
  re-stamped with the next deadline and re-pushed, so a daemon that
  fires every N seconds allocates nothing per firing.
* :meth:`Simulator.run` / :meth:`Simulator.run_until` pop events in one
  pass: cancelled events are drained as they surface at the heap head,
  without the historical ``peek()``/``step()`` double re-scan.

Two observability affordances are built in, both free when unused:

* ``len(sim)`` / :meth:`Simulator.pending_events` are O(1) and count
  only *live* events — cancelled-but-unpopped events (which linger in
  the heap until their turn) are tracked separately via
  :attr:`Simulator.cancelled_pending`, so queue-depth metrics do not
  over-report.
* :meth:`Simulator.set_profiler` installs a profiling hook (see
  :class:`repro.obs.profile.EngineProfiler`); when none is installed
  the hot loop pays a single ``is None`` check per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter  # repro: allow[DET002] profiler hook wall time; never feeds sim time
from typing import Callable, List, Optional, Protocol, Tuple


class ProfilerHook(Protocol):
    """Structural type of an engine profiling hook (see repro.obs.profile)."""

    def record(
        self, callback: Callable[[], None], wall_seconds: float, queue_depth: int
    ) -> None:
        """Account one executed event."""


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class EventHandle:
    """One scheduled event, doubling as the handle that can cancel it.

    The heap itself stores ``(time, priority, seq, event)`` tuples (so
    ordering is decided by C tuple comparison); this object carries the
    mutable state — the callback and the cancellation flag.

    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "cancelled",
        "popped",
        "_recycle",
        "_sim",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Optional[Callable[[], None]],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.popped = False
        self._recycle = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event's callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only events still in the heap count as cancelled-but-unpopped;
        # cancelling after the event already ran changes nothing.
        if self._sim is not None and not self.popped:
            self._sim._cancelled += 1


#: Backwards-compatible alias: the scheduled event *is* the handle now.
_ScheduledEvent = EventHandle


class PeriodicHandle:
    """Handle to a :meth:`Simulator.schedule_periodic` timer.

    The underlying event object is reused across firings (re-stamped
    with the next deadline and re-pushed before the callback runs), so
    a periodic daemon allocates no event objects after arming.
    ``cancel()`` stops all future firings; it is idempotent and safe to
    call from inside the callback itself.
    """

    __slots__ = ("_sim", "_event", "interval", "callback", "priority", "_active")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        priority: int,
        first_time: float,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self.callback = callback
        self.priority = priority
        self._active = True
        self._event = sim._push_event(first_time, self._fire, priority)

    @property
    def active(self) -> bool:
        """Whether the timer will keep firing."""
        return self._active

    @property
    def next_time(self) -> float:
        """Deadline of the next armed firing (meaningless once cancelled)."""
        return self._event.time

    def cancel(self) -> None:
        """Stop future firings.  Idempotent."""
        if not self._active:
            return
        self._active = False
        self._event.cancel()

    def _fire(self) -> None:
        # Re-arm *before* running the callback (drift-free: next deadline
        # is previous deadline + interval) so the callback can cancel the
        # already-armed next firing via the ordinary cancel path.
        sim = self._sim
        event = self._event
        event.time += self.interval
        event.seq = sim._seq = sim._seq + 1
        event.popped = False
        heappush(sim._queue, (event.time, event.priority, event.seq, event))
        self.callback()


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("hello at t=5"))
        sim.run_until(10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0  # cancelled events still lingering in the heap
        self._free: List[EventHandle] = []  # recyclable event free-list
        self._profiler: Optional[ProfilerHook] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def _push_event(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int,
        recycle: bool = False,
    ) -> EventHandle:
        """Allocate (or reuse) an event and push it onto the heap."""
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event.popped = False
            event._recycle = recycle
        else:
            event = EventHandle(time, priority, seq, callback, self)
            event._recycle = recycle
        heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``priority`` breaks ties between events at the same instant; lower
        runs first.  Returns a handle that can cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self._push_event(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        return self._push_event(time, callback, priority)

    def _schedule_timeout(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Process-timeout fast path: the event is recycled after it pops.

        Only :class:`repro.sim.process.Process` uses this — it drops its
        reference to the handle the moment the event fires (or is
        cancelled), which is what makes reuse safe.  ``delay`` must be
        non-negative (the caller has validated it).  The body is
        :meth:`_push_event` inlined (priority 0, recycle on): this runs
        once per process timeout, the hottest schedule in a campaign.
        """
        time = self._now + delay
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = 0
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event.popped = False
            event._recycle = True
        else:
            event = EventHandle(time, 0, seq, callback, self)
            event._recycle = True
        heappush(self._queue, (time, 0, seq, event))
        return event

    def _schedule_timeout_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Absolute-deadline variant of :meth:`_schedule_timeout`.

        Backs :class:`repro.sim.process.SleepUntil`: a process that has
        pre-computed a chain of consecutive delays sleeps once until the
        final instant instead of waking at every intermediate deadline.
        The caller is responsible for deriving ``time`` with the same
        float additions the individual waits would have performed, which
        keeps the wake instant bit-identical.  ``time`` must not lie in
        the past (callers chain forward from ``now``).
        """
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = 0
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event.popped = False
            event._recycle = True
        else:
            event = EventHandle(time, 0, seq, callback, self)
            event._recycle = True
        heappush(self._queue, (time, 0, seq, event))
        return event

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run ``callback`` every ``interval`` simulated seconds, forever.

        The first firing happens ``first_delay`` seconds from now
        (default: one full ``interval``); subsequent deadlines are
        drift-free (``previous + interval``, regardless of callback
        cost).  The timer re-arms by reusing its single event object —
        no allocation per firing.  Returns a :class:`PeriodicHandle`
        whose ``cancel()`` stops the timer.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        if first_delay is None:
            first_delay = interval
        if first_delay < 0:
            raise SimulationError(f"cannot schedule {first_delay} s in the past")
        return PeriodicHandle(
            self, interval, callback, priority, self._now + first_delay
        )

    # -- run control -------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def set_profiler(self, profiler: Optional[ProfilerHook]) -> None:
        """Install (or, with None, remove) the event-loop profiling hook.

        The profiler must expose ``record(callback, wall_seconds,
        queue_depth)``; see :class:`repro.obs.profile.EngineProfiler`.
        With no profiler installed the loop pays one ``is None`` check.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[ProfilerHook]:
        """The installed profiling hook, or None."""
        return self._profiler

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Cancelled events surfacing at the heap head are drained (and
        recycled) on the way, so a subsequent pop is O(log n) with no
        re-scan.
        """
        queue = self._queue
        while queue:
            event = queue[0][3]
            if not event.cancelled:
                return queue[0][0]
            heappop(queue)
            event.popped = True
            self._cancelled -= 1
            if event._recycle:
                event.callback = None
                self._free.append(event)
        return None

    def _pop_live(self) -> Optional[Tuple[float, Callable[[], None]]]:
        """Pop the next live event, draining cancelled ones in one pass.

        Returns ``(time, callback)``, with the event already recycled
        when eligible, or None if the queue is empty.
        """
        queue = self._queue
        free = self._free
        while queue:
            entry = heappop(queue)
            event = entry[3]
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                if event._recycle:
                    event.callback = None
                    free.append(event)
                continue
            callback = event.callback
            if event._recycle:
                event.callback = None
                free.append(event)
            assert callback is not None
            return entry[0], callback
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue was empty."""
        popped = self._pop_live()
        if popped is None:
            return False
        self._now = popped[0]
        callback = popped[1]
        profiler = self._profiler
        if profiler is None:
            callback()
        else:
            started = perf_counter()
            callback()
            profiler.record(
                callback,
                perf_counter() - started,
                len(self._queue) - self._cancelled,
            )
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` processed).

        Returns the number of events processed.
        """
        self._stopped = False
        count = 0
        pop_live = self._pop_live
        while not self._stopped:
            if max_events is not None and count >= max_events:
                break
            popped = pop_live()
            if popped is None:
                break
            self._now = popped[0]
            callback = popped[1]
            profiler = self._profiler
            if profiler is None:
                callback()
            else:
                started = perf_counter()
                callback()
                profiler.record(
                    callback,
                    perf_counter() - started,
                    len(self._queue) - self._cancelled,
                )
            count += 1
        return count

    def run_until(self, time: float) -> int:
        """Run all events up to and including simulated ``time``.

        The clock is advanced to exactly ``time`` afterwards, even if the
        last event fired earlier.  Returns the number of events processed.

        This is the campaign hot loop: events (and any cancelled events
        shadowing them at the heap head) are popped in a single pass —
        no separate ``peek()``/``step()`` head re-scans.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} (now is t={self._now})"
            )
        self._stopped = False
        count = 0
        queue = self._queue
        free = self._free
        # The profiler is attached before the run starts (or not at
        # all), so it is loop-invariant here.
        profiler = self._profiler
        while not self._stopped and queue:
            if queue[0][0] > time:
                break
            entry = heappop(queue)
            event = entry[3]
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                if event._recycle:
                    event.callback = None
                    free.append(event)
                continue
            callback = event.callback
            if event._recycle:
                event.callback = None
                free.append(event)
            self._now = entry[0]
            if profiler is None:
                callback()
            else:
                started = perf_counter()
                callback()
                profiler.record(
                    callback,
                    perf_counter() - started,
                    len(queue) - self._cancelled,
                )
            count += 1
        if time > self._now:
            self._now = time
        return count

    # -- accounting --------------------------------------------------------

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still lingering in the heap (not yet popped)."""
        return self._cancelled

    @property
    def free_list_size(self) -> int:
        """Recyclable event objects currently parked on the free-list."""
        return len(self._free)

    def __len__(self) -> int:
        """Live (non-cancelled) events still queued."""
        return self.pending_events()


__all__ = [
    "Simulator",
    "EventHandle",
    "PeriodicHandle",
    "ProfilerHook",
    "SimulationError",
]

"""Discrete-event simulation engine.

The engine is a deterministic, single-threaded event loop over a binary
heap of timestamped events.  Simulated time is a float number of seconds.
Determinism is guaranteed by a monotonically increasing sequence number
used as a tie-breaker for events scheduled at the same instant.

The engine knows nothing about Bluetooth; it only runs callbacks and
generator-based processes (see :mod:`repro.sim.process`).  Two
observability affordances are built in, both free when unused:

* ``len(sim)`` / :meth:`Simulator.pending_events` are O(1) and count
  only *live* events — cancelled-but-unpopped events (which linger in
  the heap until their turn) are tracked separately via
  :attr:`Simulator.cancelled_pending`, so queue-depth metrics do not
  over-report.
* :meth:`Simulator.set_profiler` installs a profiling hook (see
  :class:`repro.obs.profile.EngineProfiler`); when none is installed
  the hot loop pays a single ``is None`` check per event.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter  # repro: allow[DET002] profiler hook wall time; never feeds sim time
from typing import Callable, Optional, Protocol


class ProfilerHook(Protocol):
    """Structural type of an engine profiling hook (see repro.obs.profile)."""

    def record(
        self, callback: Callable[[], None], wall_seconds: float, queue_depth: int
    ) -> None:
        """Account one executed event."""


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Optional[Simulator]" = None) -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event's callback from running.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        # Only events still in the heap count as cancelled-but-unpopped;
        # cancelling after the event already ran changes nothing.
        if self._sim is not None and not event.popped:
            self._sim._cancelled += 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("hello at t=5"))
        sim.run_until(10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._cancelled = 0  # cancelled events still lingering in the heap
        self._profiler: Optional[ProfilerHook] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``priority`` breaks ties between events at the same instant; lower
        runs first.  Returns a handle that can cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = _ScheduledEvent(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def set_profiler(self, profiler: Optional[ProfilerHook]) -> None:
        """Install (or, with None, remove) the event-loop profiling hook.

        The profiler must expose ``record(callback, wall_seconds,
        queue_depth)``; see :class:`repro.obs.profile.EngineProfiler`.
        With no profiler installed the loop pays one ``is None`` check.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[ProfilerHook]:
        """The installed profiling hook, or None."""
        return self._profiler

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).popped = True
            self._cancelled -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue was empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            profiler = self._profiler
            if profiler is None:
                event.callback()
            else:
                started = perf_counter()
                event.callback()
                profiler.record(
                    event.callback,
                    perf_counter() - started,
                    len(self._queue) - self._cancelled,
                )
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` processed).

        Returns the number of events processed.
        """
        self._stopped = False
        count = 0
        while not self._stopped:
            if max_events is not None and count >= max_events:
                break
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float) -> int:
        """Run all events up to and including simulated ``time``.

        The clock is advanced to exactly ``time`` afterwards, even if the
        last event fired earlier.  Returns the number of events processed.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} (now is t={self._now})"
            )
        self._stopped = False
        count = 0
        while not self._stopped:
            nxt = self.peek()
            if nxt is None or nxt > time:
                break
            self.step()
            count += 1
        self._now = max(self._now, time)
        return count

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still lingering in the heap (not yet popped)."""
        return self._cancelled

    def __len__(self) -> int:
        """Live (non-cancelled) events still queued."""
        return self.pending_events()


__all__ = ["Simulator", "EventHandle", "ProfilerHook", "SimulationError"]

"""Batch-fidelity campaign executor: the numpy-vectorised fast path.

The bit-accurate executor (:mod:`repro.core.campaign`) walks every
Baseband payload through the discrete-event engine — one generator
resume per stack operation, transfer and recovery wait.  This module
replays the *same* campaign model per connection-cycle instead: cycle
parameters, Gilbert–Elliott transfer outcomes and stack-operation fault
gates are drawn in bulk (:mod:`repro.bluetooth.batch_channel`) from the
memoised ``Channel.loss_profile`` closed forms, and a lean scalar loop
advances each PANU's clock cycle-by-cycle, materialising failure
reports, SIRA cascades and system-log evidence only where they occur.
The resulting records feed the existing collection pipeline
(LogAnalyzer windowing + filtering into :class:`CentralRepository`)
unchanged, so every downstream analysis runs as-is.

Determinism: all randomness comes from prefix-stable SHA-256 substreams
of the campaign seed — numpy ``Generator(PCG64)`` streams for bulk
draws (:meth:`repro.sim.rng.RandomStreams.numpy_stream`) and buffered
scalar draws for failure materialisation — consumed in a fixed
single-threaded order.  A batch campaign is therefore a pure function
of its :class:`CampaignSpec`, making sweeps merge-stable at any
``--jobs``.

What batch mode approximates (documented contract, gated at 4 sigma by
``tools/equivalence_check.py`` and the hypothesis property tests):

* TDD slot dilation uses a per-PANU mean-field constant (fixed point of
  the piconet duty-cycle equations) instead of the instantaneous
  ``active_transfers`` snapshot.
* The NAP-busy multiplier on L2CAP connect failures and the bind-race
  ``SocketError`` path (P ~ 2e-5 per cycle) are folded into their base
  rates.
* Hardware replacement at half-time forces reconnection on the next
  cycle instead of invalidating HCI handles mid-transfer.

Everything else — cycle parameter laws, fault-gate conditioning,
transfer first-event sampling, masking/SIRA timing, evidence latency
texture, collection windowing — follows the bit path's arithmetic
exactly; the bit engine remains the oracle.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.bluetooth.batch_channel import (
    TRANSFER_COMPLETED,
    TRANSFER_LOSS,
    bulk_transfer_outcomes,
    latent_break_index,
)
from repro.bluetooth.channel import Channel, ChannelConfig
from repro.bluetooth.errors import PACKET_LOSS_TIMEOUT
from repro.bluetooth.hci import COMMAND_LATENCY, COMMAND_TIMEOUT
from repro.bluetooth.host import BIND_DELAY
from repro.bluetooth.l2cap import SIGNALLING_DELAY
from repro.bluetooth.lmp import (
    INQUIRY_DURATION_MAX,
    INQUIRY_DURATION_MIN,
    PAGE_DURATION_MAX,
    PAGE_DURATION_MIN,
    ROLE_SWITCH_DURATION,
)
from repro.bluetooth.packets import PACKET_TYPE_ORDER
from repro.bluetooth.sdp import SEARCH_DELAY_MAX, SEARCH_DELAY_MIN
from repro.bluetooth.stack import SDP_FAILURE_LATENCY
from repro.bluetooth.transport import BcspTransport, UartTransport, UsbTransport
from repro.collection.filtering import filter_system_records
from repro.collection.log_analyzer import DEFAULT_PERIOD
from repro.collection.messages import (
    facility_for,
    render_system_message,
    render_user_message,
    variants_for,
)
from repro.collection.records import RecoveryAttempt, SystemLogRecord, TestLogRecord
from repro.collection.repository import CentralRepository
from repro.core.failure_model import SystemFailureType, UserFailureType
from repro.faults import calibration as cal
from repro.faults.calibration import Origin
from repro.faults.evidence import (
    LATENCY_MU,
    LATENCY_SIGMA,
    MAX_EVIDENCE_DELAY,
    REPEAT_PROBABILITY,
)
from repro.faults.injector import FaultActivation, FaultInjector, NodeTraits
from repro.recovery.masking import MaskingPolicy
from repro.recovery.sira import SiraAction, standard_actions
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.testbed.node import NOISE_ERROR_MEAN, node_id
from repro.testbed.nodes import NodeProfile
from repro.workload import traffic
from repro.workload.bluetest import STACK_CHOICE, CycleStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign imports us lazily)
    from repro.core.campaign import CampaignResult, CampaignSpec

#: Cycles pre-drawn per vectorised refill of one PANU's parameter chunk.
_CHUNK = 2048
#: Probe cycles used to estimate each PANU's duty cycle for the
#: mean-field dilation fixed point.
_DUTY_PROBE = 4096

#: Per-command HCI transport latency by profile transport keyword.
_TRANSPORT_LATENCY: Dict[str, float] = {
    "usb": UsbTransport.latency,
    "uart": UartTransport.latency,
    "bcsp": BcspTransport.latency,
}

#: Reconnect-phase first-failure codes (0 = the whole chain succeeded).
_OP_NONE = 0
_OP_INQUIRY = 1
_OP_SDP_SEARCH = 2
_OP_NAP_NOT_FOUND = 3
_OP_L2CAP = 4
_OP_PAN = 5
_OP_SW_REQUEST = 6
_OP_SW_COMMAND = 7
_OP_BIND = 8

_OP_FAILURES: Tuple[Optional[UserFailureType], ...] = (
    None,
    UserFailureType.INQUIRY_SCAN_FAILED,
    UserFailureType.SDP_SEARCH_FAILED,
    UserFailureType.NAP_NOT_FOUND,
    UserFailureType.CONNECT_FAILED,
    UserFailureType.PAN_CONNECT_FAILED,
    UserFailureType.SW_ROLE_REQUEST_FAILED,
    UserFailureType.SW_ROLE_COMMAND_FAILED,
    UserFailureType.BIND_FAILED,
)

#: Failure-detection latency added after the manifest instant, mirroring
#: the per-operation waits of stack.py / pan.py (inquiry's is drawn).
_OP_DETECT_LATENCY: Tuple[float, ...] = (
    0.0,
    0.0,  # inquiry: drawn per cycle, U(2, 8)
    SDP_FAILURE_LATENCY,
    SDP_FAILURE_LATENCY,
    COMMAND_TIMEOUT,
    2.0,  # PAN connect failure latency (pan.py)
    COMMAND_TIMEOUT,
    ROLE_SWITCH_DURATION,
    0.5,  # bind failure latency (pan.py)
)

#: Per-packet-type closed-form inputs, indexed like PACKET_TYPE_ORDER.
_PT_DURATION = np.array([pt.duration for pt in PACKET_TYPE_ORDER])
_PT_MAX_PAYLOAD = np.array([pt.max_payload for pt in PACKET_TYPE_ORDER], dtype=np.int64)
_STACK_CHOICE_INDEX = PACKET_TYPE_ORDER.index(STACK_CHOICE)

#: Realistic-workload application table (order matches RealisticWorkload).
_APPS: Tuple[str, ...] = traffic.REALISTIC_APPLICATIONS
_APP_SEND = np.array([350, 350, 64, 1460, 64], dtype=np.int64)
_APP_RECV = np.array([1460, 1460, 1460, 1460, 1400], dtype=np.int64)
_APP_MULT = np.array(
    [cal.APPLICATION_HAZARD_MULTIPLIERS.get(app, 1.0) for app in _APPS]
)
#: The mail resource-size cap applied by RealisticWorkload._resource_size.
_MAIL_CAP = 5_000_000.0

_SIRA_ACTIONS: List[SiraAction] = standard_actions()

#: Mean realistic-workload cycles per connection (cpc ~ U{1..20}) and the
#: estimated extra reconnect fraction caused by scope>=2 recovery actions
#: tearing connections down; both feed only the duty-cycle estimate
#: behind the mean-field dilation fixed point.
_MEAN_CPC_REALISTIC = 10.5
_SCOPE_RECONNECT_RATE = 0.005


class _BatchClock:
    """Duck-typed stand-in for the Simulator consumed by progress probes."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def pending_events(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


class _ScalarDraws:
    """Buffered scalar draws backed by a numpy substream.

    Batch-mode failure materialisation needs ~10 scalar draws per
    failure (masking, SIRA durations, message renders, evidence
    latencies).  Pulling them from pre-drawn numpy buffers keeps the
    hot loop off ``random.Random`` while staying a deterministic,
    positionally-consumed function of the seed.  The object duck-types
    the ``random.Random`` surface the shared renderers and
    ``SiraAction.sample_duration`` use.
    """

    __slots__ = ("_gen", "_uniforms", "_normals", "_iu", "_in")

    _BUFFER = 8192

    def __init__(self, gen: Any) -> None:
        self._gen = gen
        self._uniforms: List[float] = []
        self._normals: List[float] = []
        self._iu = 0
        self._in = 0

    def random(self) -> float:
        i = self._iu
        if i >= len(self._uniforms):
            self._uniforms = self._gen.random(self._BUFFER).tolist()
            i = 0
        self._iu = i + 1
        return self._uniforms[i]

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()

    def randint(self, low: int, high: int) -> int:
        return low + int(self.random() * (high - low + 1))

    def choice(self, seq: Any) -> Any:
        return seq[int(self.random() * len(seq))]

    def gauss(self) -> float:
        i = self._in
        if i >= len(self._normals):
            self._normals = self._gen.standard_normal(self._BUFFER).tolist()
            i = 0
        self._in = i + 1
        return self._normals[i]

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return math.exp(mu + sigma * self.gauss())


class _NodeSink:
    """System-log record buffer standing in for one host's SystemLog."""

    __slots__ = ("node", "vendor", "records")

    def __init__(self, node: str, vendor: str) -> None:
        self.node = node
        self.vendor = vendor
        self.records: List[SystemLogRecord] = []


class _BatchClient:
    """Stats-only stand-in for a BlueTestClient."""

    __slots__ = ("stats",)

    def __init__(self, stats: CycleStats) -> None:
        self.stats = stats


class _BatchNode:
    """Identifier-only stand-in for a testbed node."""

    __slots__ = ("id", "client")

    def __init__(self, node: str, client: Optional[_BatchClient] = None) -> None:
        self.id = node
        self.client = client


class _BatchTestbed:
    """Duck-typed Testbed exposing what CampaignResult accessors read."""

    __slots__ = ("name", "nap", "panus")

    def __init__(self, name: str, nap: _BatchNode, panus: List[_BatchNode]) -> None:
        self.name = name
        self.nap = nap
        self.panus = panus

    def clients(self) -> List[_BatchClient]:
        return [panu.client for panu in self.panus if panu.client is not None]


def _write_error(
    sink: _NodeSink,
    time: float,
    failure: SystemFailureType,
    variant: str,
    peer: Optional[str],
    rng: _ScalarDraws,
) -> None:
    """Render and append one system-log error entry (SystemLog.error)."""
    message = render_system_message(rng, failure, variant, sink.vendor)  # type: ignore[arg-type]
    if peer:
        message = f"{message} (peer {peer})"
    sink.records.append(
        SystemLogRecord(
            time=time,
            node=sink.node,
            facility=facility_for(failure, sink.vendor),
            severity="error",
            message=message,
        )
    )


def _generate_noise(
    sink: _NodeSink, gen: Any, rng: _ScalarDraws, duration: float
) -> None:
    """Spurious background error entries of one host's system log.

    The bit path interleaves them with info chatter (LogNoise): info
    entries at rate 1/180 s, each upgraded to a spurious error with
    probability 180/2600.  Infos are dropped by the severity filter, so
    only the error point process matters — a thinned renewal process of
    rate ``1/NOISE_ERROR_MEAN``, sampled here as a Poisson count with
    uniformly scattered arrival times.
    """
    count = int(gen.poisson(duration / NOISE_ERROR_MEAN))
    if count <= 0:
        return
    times = np.sort(gen.random(count)) * duration
    error_types = list(SystemFailureType)
    for time in times.tolist():
        failure = rng.choice(error_types)
        variant = rng.choice(variants_for(failure))
        _write_error(sink, time, failure, variant, None, rng)


def _collect_node(
    sink: _NodeSink,
    test_records: List[TestLogRecord],
    phase: float,
    duration: float,
    repository: CentralRepository,
) -> None:
    """Replay the LogAnalyzer rounds over one node's record buffers.

    The daemon collects at ``phase + k * DEFAULT_PERIOD``; each round
    filters only the records appended since the previous round, so the
    duplicate-suppression state resets per window exactly as
    ``filter_system_records`` does per call.  The final partial window
    mirrors ``Testbed.final_collection()``.
    """
    records = sorted(sink.records, key=lambda record: record.time)
    kept: List[SystemLogRecord] = []
    total = len(records)
    start = 0
    cutoff = phase + DEFAULT_PERIOD
    while cutoff <= duration and start < total:
        end = start
        while end < total and records[end].time <= cutoff:
            end += 1
        if end > start:
            window_kept, _ = filter_system_records(records[start:end])
            kept.extend(window_kept)
            start = end
        cutoff += DEFAULT_PERIOD
    if start < total:
        window_kept, _ = filter_system_records(records[start:])
        kept.extend(window_kept)
    repository.ingest_system(kept)
    repository.ingest_test(test_records)


def _conditioned_probability(
    injector: FaultInjector,
    operation: str,
    failure: UserFailureType,
    traits: NodeTraits,
    sdp_performed: bool = True,
) -> float:
    """One conditioned per-attempt fault probability from the injector.

    Reads the injector's private base-rate table so batch and bit mode
    can never drift apart on calibration; the NAP-busy multiplier is
    folded out (``busy=False``), a documented batch approximation.
    """
    for candidate, base in injector._op_probabilities[operation]:
        if candidate is failure:
            return injector._condition_probability(
                failure, base, traits, busy=False, sdp_performed=sdp_performed
            )
    return 0.0


def _expected_failure_costs(masking: MaskingPolicy) -> Dict[UserFailureType, float]:
    """Expected seconds one failure of each type adds to its cycle.

    Detection latency plus the SCOPE_WEIGHTS-averaged SIRA cascade time,
    adjusted for retry masking where the policy applies it.  Feeds only
    the duty-cycle side of the dilation fixed point.
    """
    detect: Dict[UserFailureType, float] = {
        UserFailureType.INQUIRY_SCAN_FAILED: 5.0,
        UserFailureType.SDP_SEARCH_FAILED: SDP_FAILURE_LATENCY,
        UserFailureType.NAP_NOT_FOUND: SDP_FAILURE_LATENCY,
        UserFailureType.CONNECT_FAILED: COMMAND_TIMEOUT,
        UserFailureType.PAN_CONNECT_FAILED: 2.0,
        UserFailureType.BIND_FAILED: 0.5,
        UserFailureType.SW_ROLE_REQUEST_FAILED: COMMAND_TIMEOUT,
        UserFailureType.SW_ROLE_COMMAND_FAILED: ROLE_SWITCH_DURATION,
        UserFailureType.PACKET_LOSS: PACKET_LOSS_TIMEOUT,
        UserFailureType.DATA_MISMATCH: 0.0,
    }
    expected_level = [
        action.base_duration
        * (1.0 if action.max_repeats <= 1 else (2.0 + action.max_repeats) / 2.0)
        for action in _SIRA_ACTIONS
    ]
    cumulative = []
    running = 0.0
    for value in expected_level:
        running += value
        cumulative.append(running)
    effectiveness = cal.RETRY_MASK_EFFECTIVENESS
    p_masked = 1.0 - (1.0 - effectiveness) ** cal.RETRY_MASK_ATTEMPTS
    mask_wait = 0.0
    miss = 1.0
    for attempt in range(cal.RETRY_MASK_ATTEMPTS):
        mask_wait += miss * cal.RETRY_MASK_WAIT
        miss *= 1.0 - effectiveness
    costs: Dict[UserFailureType, float] = {}
    for failure in UserFailureType:
        row = cal.SCOPE_WEIGHTS.get(failure, [])
        weight_sum = sum(row)
        if weight_sum > 0.0:
            recovery = (
                sum(w * cumulative[level] for level, w in enumerate(row)) / weight_sum
            )
        else:
            recovery = 0.0
        cost = detect[failure] + recovery
        if masking.applies_retry(failure):
            cost = mask_wait + (1.0 - p_masked) * cost
        costs[failure] = cost
    return costs


def _solve_dilation(panus: List["_PanuBatch"]) -> None:
    """Mean-field TDD dilation fixed point for one testbed's piconet.

    The bit path dilates each transfer by the instantaneous count of
    concurrent transfers; batch mode replaces that with a constant
    per-PANU factor ``D_i = 1 + sum_{j != i} duty_j`` where ``duty_j``
    is PANU j's on-air fraction — the self-consistent average of the
    same quantity.
    """
    transfer = [panu.duty_fraction * panu.duty_transfer for panu in panus]
    overhead = [panu.duty_overhead for panu in panus]
    count = len(panus)
    dilation = [1.0] * count
    for _ in range(128):
        duty = [
            transfer[i] * dilation[i] / (overhead[i] + transfer[i] * dilation[i])
            if transfer[i] > 0.0
            else 0.0
            for i in range(count)
        ]
        total = sum(duty)
        updated = [
            min(float(count), 1.0 + total - duty[i]) for i in range(count)
        ]
        if all(abs(updated[i] - dilation[i]) < 1e-9 for i in range(count)):
            dilation = updated
            break
        dilation = updated
    for panu, factor in zip(panus, dilation):
        panu.dilation = factor


class _PanuBatch:
    """Vectorised per-PANU campaign state and execution."""

    def __init__(
        self,
        testbed_name: str,
        workload: str,
        profile: NodeProfile,
        nap_profile: NodeProfile,
        nap_sink: _NodeSink,
        injector: FaultInjector,
        scoped: RandomStreams,
        masking: MaskingPolicy,
        duration: float,
        hardware_replacement: bool,
    ) -> None:
        self.testbed_name = testbed_name
        self.workload = workload
        self.profile = profile
        self.traits = profile.traits
        self.masking = masking
        self.duration = duration
        self.hardware_replacement = hardware_replacement
        self.injector = injector
        self.node = node_id(testbed_name, profile.name)
        self.local_sink = _NodeSink(self.node, profile.vendor)
        self.nap_sink = nap_sink
        self.nap_name = nap_profile.name
        self.stats = CycleStats()
        self.connects = 0
        self.test_records: List[TestLogRecord] = []
        self.phase = scoped.stream(f"analyzer/{self.node}").uniform(0, 60)
        self.dilation = 1.0

        host = profile.name
        self._gen = scoped.numpy_stream(f"batch/cycles/{host}")
        self._duty_gen = scoped.numpy_stream(f"batch/duty/{host}")
        self.frng = _ScalarDraws(scoped.numpy_stream(f"batch/failures/{host}"))

        # Memoised Gilbert–Elliott closed forms, per packet type; the
        # stream only feeds Channel's (unused here) scalar sampler.
        channel = Channel(
            ChannelConfig(distance=max(profile.distance, 0.1)),
            scoped.stream(f"channel/{self.node}"),
        )
        profiles = [channel.loss_profile(pt) for pt in PACKET_TYPE_ORDER]
        self._p_drop = np.array([p.p_drop for p in profiles])
        self._p_hit = np.array([p.p_hit for p in profiles])
        self._p_undetected = np.array([p.p_undetected for p in profiles])

        self._hci_command = _TRANSPORT_LATENCY[profile.transport] + COMMAND_LATENCY
        traits = self.traits
        self._p_inquiry = _conditioned_probability(
            injector, "inquiry", UserFailureType.INQUIRY_SCAN_FAILED, traits
        )
        self._p_sdp_search = _conditioned_probability(
            injector, "sdp_search", UserFailureType.SDP_SEARCH_FAILED, traits
        )
        self._p_nap_not_found = _conditioned_probability(
            injector, "sdp_search", UserFailureType.NAP_NOT_FOUND, traits
        )
        self._p_l2cap = _conditioned_probability(
            injector, "l2cap_connect", UserFailureType.CONNECT_FAILED, traits
        )
        self._p_pan_sdp = _conditioned_probability(
            injector, "pan_connect", UserFailureType.PAN_CONNECT_FAILED, traits, True
        )
        self._p_pan_nosdp = _conditioned_probability(
            injector, "pan_connect", UserFailureType.PAN_CONNECT_FAILED, traits, False
        )
        self._p_sw_request = _conditioned_probability(
            injector, "sw_role_request", UserFailureType.SW_ROLE_REQUEST_FAILED, traits
        )
        self._p_sw_command = _conditioned_probability(
            injector, "sw_role_command", UserFailureType.SW_ROLE_COMMAND_FAILED, traits
        )
        self._p_bind = _conditioned_probability(
            injector, "bind", UserFailureType.BIND_FAILED, traits
        )

        self._index = 0
        self._size = 0
        self.duty_transfer = 0.0
        self.duty_overhead = 0.0
        self.duty_fraction = 1.0

    # -- bulk draws -----------------------------------------------------------

    def _draw_params(self, gen: Any, size: int) -> Dict[str, Any]:
        """One chunk of raw cycle parameters (the traffic-model laws)."""
        scan = gen.random(size) < traffic.P_SCAN
        sdp = gen.random(size) < traffic.P_SDP
        idle = np.minimum(
            traffic.IDLE_CAP,
            traffic.IDLE_SCALE
            * (1.0 - gen.random(size)) ** (-1.0 / traffic.IDLE_SHAPE),
        )
        if self.workload == "random":
            pt_index = gen.binomial(5, 0.5, size)
            n_logical = gen.integers(1, 361, size)
            send = gen.integers(64, 1692, size)
            recv = gen.integers(64, 1692, size)
            cycles_per_connection = np.ones(size, dtype=np.int64)
            app_index = np.zeros(size, dtype=np.int64)
            app_mult = np.ones(size)
        else:
            app_index = gen.integers(0, len(_APPS), size)
            u = gen.random(size)
            resource = np.empty(size)
            for index, model in (
                (0, traffic._WEB_SIZE),
                (2, traffic._FTP_SIZE),
                (3, traffic._P2P_SIZE),
            ):
                mask = app_index == index
                ratio = (model.xm / model.cap) ** model.alpha
                resource[mask] = model.xm / (
                    1.0 - u[mask] * (1.0 - ratio)
                ) ** (1.0 / model.alpha)
            mail = app_index == 1
            mail_count = int(mail.sum())
            if mail_count:
                resource[mail] = np.minimum(
                    gen.lognormal(
                        traffic._MAIL_SIZE.mu, traffic._MAIL_SIZE.sigma, mail_count
                    ),
                    _MAIL_CAP,
                )
            streaming = app_index == 4
            low, high = traffic._STREAM_DURATION
            resource[streaming] = (
                low + (high - low) * u[streaming]
            ) * traffic._STREAM_RATE
            pt_index = np.full(size, _STACK_CHOICE_INDEX, dtype=np.int64)
            n_logical = np.maximum(
                1, (resource // traffic.TCP_MSS).astype(np.int64)
            )
            send = _APP_SEND[app_index]
            recv = _APP_RECV[app_index]
            cycles_per_connection = gen.integers(1, 21, size)
            app_mult = _APP_MULT[app_index]
        max_payload = _PT_MAX_PAYLOAD[pt_index]
        per_logical = (send + max_payload - 1) // max_payload + (
            recv + max_payload - 1
        ) // max_payload
        n_payloads = np.maximum(1, n_logical) * per_logical
        return {
            "scan": scan,
            "sdp": sdp,
            "idle": idle,
            "pt_index": pt_index,
            "n_logical": n_logical,
            "per_logical": per_logical,
            "n_payloads": n_payloads,
            "per_payload": _PT_DURATION[pt_index],
            "cpc": cycles_per_connection,
            "app_index": app_index,
            "app_mult": app_mult,
        }

    def _fail_ops(self, gen: Any, scan: Any, did_sdp: Any, size: int) -> Any:
        """First failing reconnect-chain operation per cycle (vectorised).

        Mirrors the candidate order of the bit path: inquiry (if S),
        SDP search (if SDP or sdp-before-pan), L2CAP connect, PAN
        connect (stale-record conditioned), switch-role request,
        switch-role command, bind.
        """
        u = gen.random((size, 8))
        p_pan = np.where(did_sdp, self._p_pan_sdp, self._p_pan_nosdp)
        gates = (
            scan & (u[:, 0] < self._p_inquiry),
            did_sdp & (u[:, 1] < self._p_sdp_search),
            did_sdp & (u[:, 2] < self._p_nap_not_found),
            u[:, 3] < self._p_l2cap,
            u[:, 4] < p_pan,
            u[:, 5] < self._p_sw_request,
            u[:, 6] < self._p_sw_command,
            u[:, 7] < self._p_bind,
        )
        fail_op = np.zeros(size, dtype=np.int8)
        remaining = np.ones(size, dtype=bool)
        for code, gate in enumerate(gates, start=_OP_INQUIRY):
            selected = remaining & gate
            fail_op[selected] = code
            remaining &= ~gate
        return fail_op

    def _refill(self) -> None:
        """Pre-draw the next chunk of cycles (vectorised, then listified)."""
        gen = self._gen
        size = _CHUNK
        params = self._draw_params(gen, size)
        pt_index = params["pt_index"]
        app_mult = params["app_mult"]
        n_payloads = params["n_payloads"]
        per_payload = params["per_payload"]
        h_const = self._p_drop[pt_index] + cal.LINK_BREAK_HAZARD * app_mult
        p_mismatch = (
            self._p_hit[pt_index] * self._p_undetected[pt_index] + cal.MISMATCH_HAZARD
        )
        u_break = gen.random(size)
        u_mismatch = gen.random(size)
        status, event_index, transfer_s = bulk_transfer_outcomes(
            u_break, u_mismatch, n_payloads, h_const, p_mismatch, per_payload
        )
        # Standalone mismatch first-index pieces, re-resolved scalar-side
        # for the rare latent-defect connections.
        log_keep = np.log1p(-p_mismatch)
        log_u = np.log(np.maximum(u_mismatch, 1e-300))
        floats = n_payloads.astype(np.float64)
        mismatch_has = log_u >= floats * log_keep
        mismatch_index = np.minimum(
            np.floor(log_u / log_keep), floats - 1.0
        ).astype(np.int64)

        scan = params["scan"]
        did_sdp = params["sdp"] | self.masking.sdp_before_pan
        fail_op = self._fail_ops(gen, scan, did_sdp, size)
        latent = gen.random(size) < cal.LATENT_DEFECT_PROBABILITY
        inquiry_ok = gen.uniform(INQUIRY_DURATION_MIN, INQUIRY_DURATION_MAX, size)
        inquiry_fail = gen.uniform(2.0, 8.0, size)
        sdp_ok = gen.uniform(SEARCH_DELAY_MIN, SEARCH_DELAY_MAX, size)
        page = gen.uniform(PAGE_DURATION_MIN, PAGE_DURATION_MAX, size)
        setup = gen.uniform(0.5, 2.0, size)
        connect_overhead = (
            np.where(scan, inquiry_ok, 0.0)
            + np.where(did_sdp, sdp_ok, 0.0)
            + page
            + self._hci_command
            + SIGNALLING_DELAY
            + ROLE_SWITCH_DURATION
            + setup
            + BIND_DELAY
        )

        # -- span compression -------------------------------------------------
        # Runs of "boring" cycles (no reconnect-chain failure, transfer
        # completes, no latent defect) advance only the clock and simple
        # counters, and consume no scalar draws; precompute prefix sums
        # so the main loop can consume whole runs in O(1).
        size_arange = np.arange(size)
        dilation = self.dilation
        if self.workload == "random":
            # cpc == 1: every cycle is its own connection, so a boring
            # cycle is fully determined chunk-side.
            boring = (fail_op == 0) & (status == 0) & ~latent
            dt_full = (
                params["idle"]
                + connect_overhead
                + transfer_s * dilation
                + self._hci_command
            )
            self._cum_dt = np.cumsum(dt_full).tolist()
            self._next_special = (
                np.minimum.accumulate(np.where(~boring, size_arange, size)[::-1])[::-1]
            ).tolist()
            one_hot = pt_index[:, None] == np.arange(len(PACKET_TYPE_ORDER))[None, :]
            cum_counts = np.cumsum(one_hot, axis=0)
            self._cum_counts = [cum_counts[:, k].tolist() for k in range(len(PACKET_TYPE_ORDER))]
        else:
            # Connected spans end at the first non-completing transfer;
            # connection boundaries (cpc, latency) are resolved scalar-side.
            self._next_bad = (
                np.minimum.accumulate(np.where(status != 0, size_arange, size)[::-1])[::-1]
            ).tolist()
            self._cum_tr = np.cumsum(
                params["idle"] + transfer_s * dilation
            ).tolist()
            self._cum_idle = np.cumsum(params["idle"]).tolist()
            self._cum_np = np.cumsum(n_payloads).tolist()

        self.scan = scan.tolist()
        self.sdp_flag = params["sdp"].tolist()
        self.did_sdp = did_sdp.tolist()
        self.idle = params["idle"].tolist()
        self.pt_index = pt_index.tolist()
        self.n_logical = params["n_logical"].tolist()
        self.per_logical = params["per_logical"].tolist()
        self.n_payloads = n_payloads.tolist()
        self.per_payload = per_payload.tolist()
        self.cpc = params["cpc"].tolist()
        self.app_index = params["app_index"].tolist()
        self.app_mult = app_mult.tolist()
        self.h_const = h_const.tolist()
        self.status = status.tolist()
        self.event_index = event_index.tolist()
        self.transfer_s = transfer_s.tolist()
        self.mismatch_has = mismatch_has.tolist()
        self.mismatch_index = mismatch_index.tolist()
        self.u_break = u_break.tolist()
        self.fail_op = fail_op.tolist()
        self.latent = latent.tolist()
        self.inquiry_ok = inquiry_ok.tolist()
        self.inquiry_fail = inquiry_fail.tolist()
        self.sdp_ok = sdp_ok.tolist()
        self.page = page.tolist()
        self.setup = setup.tolist()
        self.connect_overhead = connect_overhead.tolist()
        self._index = 0
        self._size = size

    # -- duty estimation ------------------------------------------------------

    def estimate_duty(self, failure_costs: Dict[UserFailureType, float]) -> None:
        """Probe-chunk estimate of this PANU's duty-cycle terms.

        Computes, per cycle: the expected on-air transfer seconds
        (undilated), the fraction of cycles that reach the transfer
        stage, and everything else (idle, reconnect chains, failure
        detection/recovery) as ``duty_overhead``.  The dilation fixed
        point then solves period = overhead + fraction * s * D.
        """
        gen = self._duty_gen
        params = self._draw_params(gen, _DUTY_PROBE)
        n_payloads = params["n_payloads"].astype(np.float64)
        h_const = (
            self._p_drop[params["pt_index"]]
            + cal.LINK_BREAK_HAZARD * params["app_mult"]
        )
        # Expected on-air payloads under the constant hazard, truncation
        # at the link-break included; P(break) is the same integral's
        # mass at the event.
        p_break = -np.expm1(-h_const * n_payloads)
        expected_payloads = p_break / h_const
        # Latent-defect connections (probability LATENT_DEFECT_PROBABILITY
        # per connect) multiply the break hazard by LATENT_HAZARD_MULTIPLIER
        # over roughly the first LATENT_DEFECT_PACKETS payloads.
        base_hazard = cal.LINK_BREAK_HAZARD * params["app_mult"]
        if self.workload == "random":
            # One cycle per connection: blend the infant-mortality break
            # probability (and its shorter on-air time) directly.
            latent_extra = (
                base_hazard
                * (cal.LATENT_HAZARD_MULTIPLIER - 1.0)
                * cal.LATENT_DEFECT_PACKETS
                * -np.expm1(-n_payloads / cal.LATENT_DEFECT_PACKETS)
            )
            h_latent = h_const + latent_extra / n_payloads
            p_break_latent = -np.expm1(-h_latent * n_payloads)
            p_defect = cal.LATENT_DEFECT_PROBABILITY
            p_loss = float(
                np.mean((1.0 - p_defect) * p_break + p_defect * p_break_latent)
            )
            self.duty_transfer = float(
                np.mean(
                    params["per_payload"]
                    * (
                        (1.0 - p_defect) * expected_payloads
                        + p_defect * p_break_latent / h_latent
                    )
                )
            )
            latent_loss_rate = 0.0
        else:
            # Connections persist for several cycles and a latent defect
            # mostly burns out within the first (n_payloads >> tau), so
            # amortise one extra per-connection break over the cycles.
            conn_payloads = n_payloads * params["cpc"].astype(np.float64)
            latent_conn = (
                base_hazard
                * (cal.LATENT_HAZARD_MULTIPLIER - 1.0)
                * cal.LATENT_DEFECT_PACKETS
                * -np.expm1(-conn_payloads / cal.LATENT_DEFECT_PACKETS)
            )
            latent_loss_rate = cal.LATENT_DEFECT_PROBABILITY * float(
                np.mean(-np.expm1(-latent_conn) / params["cpc"])
            )
            p_loss = float(np.mean(p_break)) + latent_loss_rate
            self.duty_transfer = float(
                np.mean(expected_payloads * params["per_payload"])
            )
        did_sdp = params["sdp"] | self.masking.sdp_before_pan
        fail_op = self._fail_ops(gen, params["scan"], did_sdp, _DUTY_PROBE)
        op_rate = np.bincount(fail_op.astype(np.int64), minlength=9) / float(
            _DUTY_PROBE
        )
        # Reconnect fraction: the random workload tears the connection
        # down every cycle; realistic connections persist ~U{1..20}
        # cycles, cut short by packet losses and scope>=2 recoveries.
        if self.workload == "random":
            reconnect_rate = 1.0
        else:
            reconnect_rate = (
                1.0 / _MEAN_CPC_REALISTIC + p_loss + _SCOPE_RECONNECT_RATE
            )
        self.duty_fraction = 1.0 - reconnect_rate * float(op_rate[1:].sum())
        inquiry_mean = (INQUIRY_DURATION_MIN + INQUIRY_DURATION_MAX) / 2.0
        sdp_mean = (SEARCH_DELAY_MIN + SEARCH_DELAY_MAX) / 2.0
        page_mean = (PAGE_DURATION_MIN + PAGE_DURATION_MAX) / 2.0
        connect_mean = (
            float(np.mean(np.where(params["scan"], inquiry_mean, 0.0)))
            + float(np.mean(np.where(did_sdp, sdp_mean, 0.0)))
            + page_mean
            + self._hci_command
            + SIGNALLING_DELAY
            + ROLE_SWITCH_DURATION
            + 1.25  # mean application set-up wait U(0.5, 2.0)
            + BIND_DELAY
        )
        failure_overhead = reconnect_rate * sum(
            float(op_rate[code]) * failure_costs[failure]
            for code, failure in enumerate(_OP_FAILURES)
            if failure is not None
        )
        failure_overhead += (
            self.duty_fraction
            * p_loss
            * failure_costs[UserFailureType.PACKET_LOSS]
        )
        self.duty_overhead = (
            float(np.mean(params["idle"]))
            + reconnect_rate * (connect_mean + self._hci_command)
            + failure_overhead
        )

    # -- failure materialisation ---------------------------------------------

    def _emit_evidence(self, activation: FaultActivation, manifest: float) -> None:
        """Schedule-free mirror of faults.evidence.emit_evidence."""
        rng = self.frng
        duration = self.duration
        for index, (failure_type, variant, origin) in enumerate(activation.evidence):
            if origin is Origin.NONE:
                continue
            if origin is Origin.LOCAL:
                sink, peer = self.local_sink, None
            else:
                sink, peer = self.nap_sink, self.profile.name
            if index == 0:
                delay = rng.uniform(0.0, 2.0)
            else:
                delay = min(
                    MAX_EVIDENCE_DELAY, rng.lognormvariate(LATENCY_MU, LATENCY_SIGMA)
                )
            when = manifest + delay
            if when <= duration:
                _write_error(sink, when, failure_type, variant, peer, rng)
            if rng.random() < REPEAT_PROBABILITY:
                repeat_delay = delay + rng.uniform(6.0, 60.0)
                if repeat_delay <= MAX_EVIDENCE_DELAY:
                    when = manifest + repeat_delay
                    if when <= duration:
                        _write_error(sink, when, failure_type, variant, peer, rng)

    def _handle_failure(
        self,
        t: float,
        failure: UserFailureType,
        activation: FaultActivation,
        index: int,
        packets_sent: int,
        cycle_on_connection: int,
        app_name: str,
    ) -> Tuple[float, bool, int]:
        """Masking/SIRA/reporting mirror of BlueTestClient._handle_failure.

        Returns ``(t_after, completed, scope)``: ``completed`` is False
        when the campaign horizon truncated the handling (counters and
        report then match what the event engine would have processed);
        ``scope`` is 0 for masked failures (no recovery side effects).
        """
        stats = self.stats
        rng = self.frng
        duration = self.duration
        masked = False
        if self.masking.applies_retry(failure):
            for _ in range(cal.RETRY_MASK_ATTEMPTS):
                t += cal.RETRY_MASK_WAIT
                if t > duration:
                    return t, False, 0
                if rng.random() < cal.RETRY_MASK_EFFECTIVENESS:
                    masked = True
                    break
        attempts: Tuple[RecoveryAttempt, ...] = ()
        scope = 0
        if masked:
            stats.masked += 1
        else:
            stats.failures += 1
            scope = activation.scope
            if scope > 0:
                chain: List[RecoveryAttempt] = []
                for action in _SIRA_ACTIONS:
                    sampled = action.sample_duration(rng)  # type: ignore[arg-type]
                    chain.append(
                        RecoveryAttempt(
                            action=action.name,
                            succeeded=action.level >= scope,
                            duration=sampled,
                        )
                    )
                    t += sampled
                    if action.level >= scope:
                        break
                attempts = tuple(chain)
            if t > duration:
                return t, False, scope
        packet_type = PACKET_TYPE_ORDER[self.pt_index[index]]
        self.test_records.append(
            TestLogRecord(
                time=t,
                node=self.node,
                testbed=self.testbed_name,
                workload=app_name,
                message=render_user_message(rng, failure),  # type: ignore[arg-type]
                phase=failure.group.value,
                packet_type=packet_type.value,
                packets_sent=packets_sent,
                packets_expected=self.n_logical[index],
                scan_flag=self.scan[index],
                sdp_flag=self.sdp_flag[index],
                distance=self.profile.distance,
                cycle_on_connection=cycle_on_connection,
                idle_before_cycle=self.idle[index],
                masked=masked,
                recovery=attempts,
            )
        )
        return t, True, scope

    # -- main loop ------------------------------------------------------------

    def run(self) -> None:
        """Advance this PANU's clock through the whole campaign."""
        duration = self.duration
        half = duration / 2.0
        stats = self.stats
        counts = stats.cycles_by_packet_type
        injector = self.injector
        traits = self.traits
        dilation = self.dilation
        hci_command = self._hci_command
        replaced = not self.hardware_replacement

        t = 0.0
        connected = False
        latent = False
        age = 0
        cycles_left = 0
        cycle_on_connection = 0

        is_random = self.workload == "random"
        type_count = len(PACKET_TYPE_ORDER)
        span_counts = [0] * type_count  # per-type cycles consumed by spans

        self._refill()
        while True:
            index = self._index
            if index >= self._size:
                self._refill()
                index = 0

            # -- span fast paths (no scalar draws consumed) -------------------
            if is_random:
                if not connected:
                    j = self._next_special[index]
                    if j > index:
                        cum_dt = self._cum_dt
                        base = cum_dt[index - 1] if index else 0.0
                        total = cum_dt[j - 1] - base
                        if t + total <= duration:
                            # j - index boring one-cycle connections: only
                            # the clock and the counters move.
                            t += total
                            n_span = j - index
                            stats.cycles += n_span
                            self.connects += n_span
                            cum_counts = self._cum_counts
                            for k in range(type_count):
                                col = cum_counts[k]
                                span_counts[k] += col[j - 1] - (
                                    col[index - 1] if index else 0
                                )
                            # Residual state exactly as after a scalar
                            # boring cycle (op-failure records read it).
                            cycle_on_connection = 1
                            cycles_left = 0
                            latent = False
                            age = self.n_payloads[j - 1]
                            self._index = j
                            continue
            elif connected and not latent:
                j = self._next_bad[index]
                limit = index + cycles_left
                if j > limit:
                    j = limit
                if j > index:
                    cum_tr = self._cum_tr
                    base = cum_tr[index - 1] if index else 0.0
                    total = cum_tr[j - 1] - base
                    tend = t + total
                    if tend <= duration and (replaced or tend < half):
                        m = j - index
                        t = tend
                        stats.cycles += m
                        span_counts[_STACK_CHOICE_INDEX] += m
                        cum_idle = self._cum_idle
                        idle_total = cum_idle[j - 1] - (
                            cum_idle[index - 1] if index else 0.0
                        )
                        cum_np = self._cum_np
                        age += cum_np[j - 1] - (cum_np[index - 1] if index else 0)
                        cycles_left -= m
                        cycle_on_connection += m
                        self._index = j
                        if cycles_left <= 0:
                            # Mirror the scalar order: the disconnect
                            # command can cross the horizon, in which
                            # case the final cycle's idle bookkeeping
                            # never runs.
                            last_idle = self.idle[j - 1]
                            stats.idle_ok_sum += idle_total - last_idle
                            stats.idle_ok_count += m - 1
                            connected = False
                            t += hci_command  # L2CAP disconnect command
                            if t > duration:
                                break
                            stats.idle_ok_sum += last_idle
                            stats.idle_ok_count += 1
                        else:
                            stats.idle_ok_sum += idle_total
                            stats.idle_ok_count += m
                        continue

            self._index = index + 1

            idle = self.idle[index]
            t += idle
            if t > duration:
                break
            if not replaced and t >= half:
                # All dongles are swapped at half-time; every HCI handle
                # is invalidated, so connections are gone by the next
                # aliveness check (batch approximation: at cycle start).
                replaced = True
                connected = False
            stats.cycles += 1
            had_connection = connected
            pt_index = self.pt_index[index]
            key = PACKET_TYPE_ORDER[pt_index].code
            counts[key] = counts.get(key, 0) + 1
            app_name = "random" if is_random else _APPS[self.app_index[index]]

            if not connected:
                op = self.fail_op[index]
                if op != _OP_NONE:
                    scan_wait = self.inquiry_ok[index] if self.scan[index] else 0.0
                    if op == _OP_INQUIRY:
                        manifest = t
                        detect_extra = self.inquiry_fail[index]
                    elif op <= _OP_NAP_NOT_FOUND:
                        manifest = t + scan_wait
                        detect_extra = SDP_FAILURE_LATENCY
                    else:
                        sdp_wait = self.sdp_ok[index] if self.did_sdp[index] else 0.0
                        if op == _OP_L2CAP:
                            manifest = t + scan_wait + sdp_wait
                            detect_extra = COMMAND_TIMEOUT
                        else:
                            chained = (
                                t
                                + scan_wait
                                + sdp_wait
                                + self.page[index]
                                + hci_command
                                + SIGNALLING_DELAY
                            )
                            if op == _OP_BIND:
                                # The PAN connection itself came up; the
                                # IP-socket bind is what fails.
                                manifest = (
                                    chained + ROLE_SWITCH_DURATION + self.setup[index]
                                )
                                connected = True
                                self.connects += 1
                                latent = self.latent[index]
                                age = 0
                                cycles_left = self.cpc[index]
                                cycle_on_connection = 0
                            else:
                                manifest = chained
                            detect_extra = _OP_DETECT_LATENCY[op]
                    if manifest > duration:
                        break
                    failure = _OP_FAILURES[op]
                    assert failure is not None
                    activation = injector.activate(failure, traits)
                    self._emit_evidence(activation, manifest)
                    detect = manifest + detect_extra
                    if detect > duration:
                        break
                    t, completed, scope = self._handle_failure(
                        detect, failure, activation, index, 0,
                        cycle_on_connection, app_name,
                    )
                    if not completed:
                        break
                    if scope >= 2:
                        connected = False
                    if scope >= 4:
                        cycles_left = 0
                    continue
                t += self.connect_overhead[index]
                if t > duration:
                    break
                connected = True
                self.connects += 1
                latent = self.latent[index]
                age = 0
                cycles_left = self.cpc[index]
                cycle_on_connection = 0

            cycle_on_connection += 1
            status = self.status[index]
            event_index = self.event_index[index]
            transfer_s = self.transfer_s[index]
            if latent:
                status, event_index, transfer_s = self._resolve_latent(index, age)

            if status == TRANSFER_COMPLETED:
                t += transfer_s * dilation
                if t > duration:
                    break
                age += self.n_payloads[index]
                cycles_left -= 1
                if cycles_left <= 0:
                    connected = False
                    t += hci_command  # L2CAP disconnect command
                    if t > duration:
                        break
                if had_connection:
                    stats.idle_ok_sum += idle
                    stats.idle_ok_count += 1
                continue

            if status == TRANSFER_LOSS:
                detect = t + transfer_s * dilation + PACKET_LOSS_TIMEOUT
                if detect > duration:
                    break
                age += event_index
                packets_sent = age // self.per_logical[index]
                connected = False
                failure = UserFailureType.PACKET_LOSS
            else:
                detect = t + transfer_s * dilation
                if detect > duration:
                    break
                age += event_index
                packets_sent = 0
                failure = UserFailureType.DATA_MISMATCH
            activation = injector.activate(failure, traits)
            self._emit_evidence(activation, detect)
            t, completed, scope = self._handle_failure(
                detect, failure, activation, index, packets_sent,
                cycle_on_connection, app_name,
            )
            if not completed:
                break
            if scope >= 2:
                connected = False
            if scope >= 4:
                cycles_left = 0
            if had_connection:
                stats.idle_fail_sum += idle
                stats.idle_fail_count += 1

        for k in range(type_count):
            if span_counts[k]:
                key = PACKET_TYPE_ORDER[k].code
                counts[key] = counts.get(key, 0) + span_counts[k]

    def _resolve_latent(self, index: int, age: int) -> Tuple[int, int, float]:
        """Re-resolve one transfer under the infant-mortality hazard."""
        n_payloads = self.n_payloads[index]
        break_index = latent_break_index(
            self.u_break[index],
            self.h_const[index],
            cal.LINK_BREAK_HAZARD * self.app_mult[index],
            cal.LATENT_HAZARD_MULTIPLIER,
            cal.LATENT_DEFECT_PACKETS,
            float(age),
            n_payloads,
        )
        mismatch_index = (
            self.mismatch_index[index] if self.mismatch_has[index] else None
        )
        if mismatch_index is not None and (
            break_index is None or mismatch_index < break_index
        ):
            payloads = mismatch_index + 1
            return 2, mismatch_index, payloads * self.per_payload[index]
        if break_index is not None:
            payloads = break_index + 1
            return 1, break_index, payloads * self.per_payload[index]
        return 0, n_payloads, n_payloads * self.per_payload[index]


def execute_batch_campaign(
    spec: "CampaignSpec",
    observability: Optional[Any] = None,
    on_progress: Optional[Callable[[Any], None]] = None,
    progress_interval: Optional[float] = None,
) -> "CampaignResult":
    """Run one campaign replicate in batch fidelity.

    Mirrors ``_execute_campaign`` for ``fidelity="batch"``: same spec,
    same repository/result shape, vectorised execution.  Per-packet
    observability (metrics/tracing/profiling) needs the event engine,
    so passing a bundle is rejected — run ``fidelity="bit"`` for that.
    """
    from repro.core.campaign import CampaignResult, _gc_paused

    if observability is not None:
        raise ValueError(
            "fidelity='batch' does not support observability instrumentation "
            "(per-packet metrics/tracing need the bit-accurate engine); "
            "drop the bundle or run fidelity='bit'"
        )
    duration = float(spec.duration)
    if duration <= 0:
        raise ValueError("campaign duration must be positive")
    streams = RandomStreams(spec.seed)
    repository = CentralRepository()
    clock = _BatchClock()
    if on_progress is not None and progress_interval:
        on_progress(clock)
    testbeds: Dict[str, Any] = {}
    events_processed = 0
    failure_costs = _expected_failure_costs(spec.masking)
    with _gc_paused():
        for name in spec.workloads:
            if name not in ("random", "realistic"):
                raise ValueError(f"unknown workload: {name!r}")
            scoped = streams.fork(f"testbed/{name}")
            injector = FaultInjector(
                scoped.stream("injector"), tuning=spec.injector_tuning()
            )
            nap_profile = next(p for p in spec.profiles if p.is_nap)
            panu_profiles = [p for p in spec.profiles if not p.is_nap]
            nap_node = node_id(name, nap_profile.name)
            nap_sink = _NodeSink(nap_node, nap_profile.vendor)
            panus = [
                _PanuBatch(
                    name,
                    name,
                    profile,
                    nap_profile,
                    nap_sink,
                    injector,
                    scoped,
                    spec.masking,
                    duration,
                    spec.hardware_replacement,
                )
                for profile in panu_profiles
            ]
            for panu in panus:
                panu.estimate_duty(failure_costs)
            _solve_dilation(panus)
            for panu in panus:
                panu.run()
                events_processed += panu.stats.cycles
            nap_noise = _ScalarDraws(
                scoped.numpy_stream(f"batch/noise/{nap_profile.name}")
            )
            _generate_noise(nap_sink, nap_noise._gen, nap_noise, duration)
            for panu in panus:
                noise = _ScalarDraws(
                    scoped.numpy_stream(f"batch/noise/{panu.profile.name}")
                )
                _generate_noise(panu.local_sink, noise._gen, noise, duration)
            nap_phase = scoped.stream(f"analyzer/{nap_node}").uniform(0, 60)
            _collect_node(nap_sink, [], nap_phase, duration, repository)
            for panu in panus:
                _collect_node(
                    panu.local_sink,
                    panu.test_records,
                    panu.phase,
                    duration,
                    repository,
                )
            testbeds[name] = _BatchTestbed(
                name,
                _BatchNode(nap_node),
                [
                    _BatchNode(panu.node, _BatchClient(panu.stats))
                    for panu in panus
                ],
            )
    clock.now = duration
    if on_progress is not None and progress_interval:
        on_progress(clock)
    return CampaignResult(
        duration=duration,
        seed=spec.seed,
        masking=spec.masking,
        repository=repository,
        testbeds=testbeds,
        sim=Simulator(),
        observability=None,
        events_processed=events_processed,
    )


__all__ = ["execute_batch_campaign"]

"""Generator-based simulation processes.

A *process* is a Python generator driven by the simulator.  It models a
concurrent activity (a workload client, a daemon, a protocol timer) that
repeatedly waits — for time to pass or for an event to fire — and then
acts.  Processes yield:

* :class:`Timeout` — resume after a simulated delay;
* :class:`SimEvent` — resume when the event is triggered (receiving its
  value, or having its exception thrown in);
* another :class:`Process` — resume when it terminates (receiving its
  return value, or re-raising its failure).

Processes can be interrupted (:meth:`Process.interrupt`), which throws
:class:`Interrupt` inside the generator at its current wait point — used
to model recovery actions tearing down an in-flight workload cycle.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .engine import EventHandle, Simulator


class Interrupt(Exception):
    """Thrown inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Yieldable: suspend the process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class SleepUntil:
    """Yieldable: suspend the process until absolute simulated ``time``.

    This is the vehicle for *wait chaining*: a sequence of consecutive
    waits with nothing externally observable between them collapses into
    one wake-up at the final deadline.  The caller must accumulate the
    deadline with the same float additions the individual waits would
    have performed (``deadline = now; deadline += d1; deadline += d2``),
    which makes the final instant bit-identical to the step-by-step
    schedule — the event count drops, the timeline does not move.
    """

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time

    def __repr__(self) -> str:
        return f"SleepUntil({self.time!r})"


class SimEvent:
    """A one-shot event that processes can wait on.

    Trigger it with :meth:`succeed` (delivering a value) or :meth:`fail`
    (throwing an exception into every waiter).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, waking all waiters."""
        self._trigger(value=value)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception, thrown into all waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(exception=exception)
        return self

    def _trigger(
        self, value: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            # Wake each waiter at the current instant, preserving order.
            self._sim.schedule(0.0, lambda p=proc: p._resume_from_event(self))

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self._sim.schedule(0.0, lambda: proc._resume_from_event(self))
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)


class Process:
    """A running simulation process wrapping a generator.

    Completed processes expose :attr:`alive`, :attr:`result` and
    :attr:`exception`.  Waiting on a finished process resumes
    immediately.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self._pending_timeout: Optional[EventHandle] = None
        self._waiting_on: Optional[SimEvent] = None
        self._waiting_on_proc: Optional["Process"] = None
        # One bound-method object reused for every timeout resume — the
        # per-wait lambda allocation is the single hottest allocation in
        # a campaign, so it is hoisted to construction time.  A timeout
        # resumes the generator with None, which is _step_send's default,
        # so the engine calls _step_send directly (no wrapper frame).
        self._on_timeout = self._step_send
        # Start the process at the current instant.  The start event is
        # recyclable: nothing holds its handle, it can never be cancelled.
        sim._schedule_timeout(0.0, self._on_timeout)

    # -- public API ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (None until finished)."""
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        """Exception that terminated the process, if any."""
        return self._exception

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        No-op on a finished process.
        """
        if not self._alive:
            return
        self._cancel_wait()
        self._sim.schedule(
            0.0, lambda: self._step_throw(Interrupt(cause)), priority=-1
        )

    # -- kernel ----------------------------------------------------------

    def _cancel_wait(self) -> None:
        if self._pending_timeout is not None:
            self._pending_timeout.cancel()
            self._pending_timeout = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._waiting_on_proc is not None:
            self._waiting_on_proc._waiters_remove(self)
            self._waiting_on_proc = None

    def _waiters_remove(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def _resume_from_event(self, event: SimEvent) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        if event._exception is not None:
            self._step_throw(event._exception)
        else:
            self._step_send(event._value)

    def _resume_from_process(self, proc: "Process") -> None:
        if not self._alive:
            return
        self._waiting_on_proc = None
        if proc._exception is not None:
            self._step_throw(proc._exception)
        else:
            self._step_send(proc._result)

    def _step_send(self, value: Any = None) -> None:
        if not self._alive:
            return
        self._pending_timeout = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self._finish(exception=exc)
            return
        # Inlined Timeout fast path (~95% of waits): everything else
        # falls through to the generic dispatcher.
        if type(yielded) is Timeout:
            self._pending_timeout = self._sim._schedule_timeout(
                yielded.delay, self._on_timeout
            )
            return
        if type(yielded) is SleepUntil:
            self._pending_timeout = self._sim._schedule_timeout_at(
                yielded.time, self._on_timeout
            )
            return
        self._wait_on(yielded)

    def _step_throw(self, exception: BaseException) -> None:
        if not self._alive:
            return
        self._pending_timeout = None
        try:
            yielded = self._gen.throw(exception)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self._finish(exception=exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        # Timeout is ~95% of all waits in a campaign: exact-type check
        # first, then the recyclable-event fast path with the prebound
        # resume method (no lambda, no new event object in steady state).
        if type(yielded) is Timeout:
            delay = yielded.delay
            # Timeout.__init__ validated delay >= 0.
            self._pending_timeout = self._sim._schedule_timeout(
                delay, self._on_timeout
            )
        elif type(yielded) is SleepUntil:
            self._pending_timeout = self._sim._schedule_timeout_at(
                yielded.time, self._on_timeout
            )
        elif isinstance(yielded, SimEvent):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            if yielded._alive:
                self._waiting_on_proc = yielded
                yielded._waiters.append(self)
            else:
                self._sim.schedule(0.0, lambda: self._resume_from_process(yielded))
                self._waiting_on_proc = yielded
        elif isinstance(yielded, Timeout):  # Timeout subclass (rare)
            self._pending_timeout = self._sim._schedule_timeout(
                yielded.delay, self._on_timeout
            )
        else:
            self._step_throw(
                TypeError(f"process yielded unsupported value: {yielded!r}")
            )

    def _finish(
        self, result: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.schedule(0.0, lambda p=proc: p._resume_from_process(self))
        # An exception with no waiters would otherwise vanish silently.
        if exception is not None and not waiters and not isinstance(exception, Interrupt):
            raise exception


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Start ``generator`` as a process on ``sim``."""
    return Process(sim, generator, name=name)


__all__ = ["Process", "SimEvent", "Timeout", "SleepUntil", "Interrupt", "spawn"]

"""Electromagnetic interference episodes.

The paper attributes correlated error bursts partly to "electromagnetic
interferences" in the 2.4 GHz ISM band (microwave ovens, 802.11
traffic).  An :class:`InterferenceSource` models an interferer near the
testbed: episodes arrive as a Poisson process, last an exponential
duration, and multiply the burst-arrival rate of *every* link while
active — interference is spatially shared, which is what distinguishes
it from per-link fading.
"""

from __future__ import annotations

import random
from typing import Generator, List, Sequence

from repro.bluetooth.channel import Channel
from repro.sim import Simulator, Timeout, spawn


class InterferenceSource:
    """A shared 2.4 GHz interferer affecting all channels of one lab."""

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[Channel],
        rng: random.Random,
        mean_interval: float = 7200.0,  # one episode every ~2 h
        mean_duration: float = 300.0,  # ~5 min per episode
        factor: float = 8.0,  # burst-rate multiplier while active
    ) -> None:
        if mean_interval <= 0 or mean_duration <= 0:
            raise ValueError("interference intervals must be positive")
        if factor <= 1.0:
            raise ValueError("an interferer must raise the burst rate")
        self.sim = sim
        self.channels = list(channels)
        self._rng = rng
        self.mean_interval = mean_interval
        self.mean_duration = mean_duration
        self.factor = factor
        self.episodes = 0
        self.active = False
        self.total_active_time = 0.0
        self.episode_log: List[tuple] = []  # (start, end) pairs

    def run(self) -> Generator:
        """The episode process (spawn it on the simulator)."""
        while True:
            yield Timeout(self._rng.expovariate(1.0 / self.mean_interval))
            duration = self._rng.expovariate(1.0 / self.mean_duration)
            start = self.sim.now
            self._set(self.factor)
            self.active = True
            self.episodes += 1
            yield Timeout(duration)
            self._set(1.0)
            self.active = False
            self.total_active_time += duration
            self.episode_log.append((start, self.sim.now))

    def start(self):
        return spawn(self.sim, self.run(), name="interference")

    def _set(self, factor: float) -> None:
        for channel in self.channels:
            channel.set_interference(factor)

    def was_active_at(self, time: float) -> bool:
        """Whether an episode covered simulated ``time`` (for analyses)."""
        return any(start <= time <= end for start, end in self.episode_log)


__all__ = ["InterferenceSource"]

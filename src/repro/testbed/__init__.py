"""Testbed emulation: the paper's node catalogue, topology and deployment."""

from .nodes import (
    ALL_PROFILES,
    AZZURRO,
    GIALLO,
    IPAQ,
    MISENO,
    NodeProfile,
    PANU_PROFILES,
    VERDE,
    WIN,
    ZAURUS,
    distances,
    profile_by_name,
)
from .node import NapNode, PanuNode, LogNoise, display_name, node_id
from .testbed import Testbed

__all__ = [
    "NodeProfile",
    "ALL_PROFILES",
    "PANU_PROFILES",
    "GIALLO",
    "VERDE",
    "MISENO",
    "AZZURRO",
    "WIN",
    "IPAQ",
    "ZAURUS",
    "profile_by_name",
    "distances",
    "NapNode",
    "PanuNode",
    "LogNoise",
    "node_id",
    "display_name",
    "Testbed",
]

"""Testbed topology rendering (the paper's figure 1).

Figure 1 shows both testbeds' layout: the NAP (Giallo) in the middle,
six PANUs at fixed antenna distances (0.5, 5 and 7 m), along with the
technical table of every machine.  These renderers reproduce both from
the node catalogue, so documentation and examples can print the
deployment they are about to simulate.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.reporting.tables import format_table
from .nodes import ALL_PROFILES, NodeProfile


def render_machine_table(profiles: Sequence[NodeProfile] = ALL_PROFILES) -> str:
    """The hardware/software table of figure 1."""
    headers = ["Host", "O.S.", "Distribution", "Kernel", "CPU/RAM",
               "BT Stack", "BT Hardware"]
    rows = []
    for profile in profiles:
        rows.append([
            profile.name + (" (NAP)" if profile.is_nap else ""),
            profile.os,
            profile.distribution,
            profile.kernel,
            f"{profile.cpu}/{profile.ram_mb}Mb",
            profile.bt_stack,
            profile.bt_hardware,
        ])
    return format_table(headers, rows, title="Testbed machines (figure 1)")


def render_topology(profiles: Sequence[NodeProfile] = ALL_PROFILES) -> str:
    """ASCII map: the NAP with its PANUs grouped by distance ring."""
    nap = next(p for p in profiles if p.is_nap)
    panus = [p for p in profiles if not p.is_nap]
    rings = {}
    for profile in panus:
        rings.setdefault(profile.distance, []).append(profile.name)

    lines: List[str] = ["Piconet topology (both testbeds)", ""]
    lines.append(f"            [{nap.name}]  <- NAP / piconet master")
    lines.append("               |")
    for distance in sorted(rings):
        names = ", ".join(sorted(rings[distance]))
        lines.append(f"   {distance:>4.1f} m  ---  {names}")
    lines.append("")
    lines.append(
        "Antenna positions are fixed (desk-scale PAN); each PANU runs a "
        "BlueTest client,\nthe NAP runs the BlueTest server and accepts "
        "up to 7 slaves."
    )
    return "\n".join(lines)


def render_figure1() -> str:
    """The full figure-1 artifact: topology map plus machine table."""
    return render_topology() + "\n\n" + render_machine_table()


__all__ = ["render_topology", "render_machine_table", "render_figure1"]

"""Testbed deployment: 1 NAP + 6 heterogeneous PANUs, per the paper.

Two such testbeds ran in two labs — one driven by the Random workload,
one by the Realistic workload — with the same hardware/software
configuration.  Both shipped their filtered failure data to the same
central repository.  Mid-campaign the hardware was replaced with
identical units to reduce aging effects; the swap is reproduced as a
synchronous stack reset on every node.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.bluetooth.channel import ChannelConfig
from repro.collection.repository import CentralRepository
from repro.faults.injector import FaultInjector, InjectorTuning
from repro.recovery.masking import MaskingPolicy
from repro.sim import RandomStreams, Simulator
from repro.workload.traffic import WorkloadModel
from .interference import InterferenceSource
from .node import NapNode, PanuNode
from .nodes import ALL_PROFILES, NodeProfile


class Testbed:
    """One deployed testbed (NAP plus PANUs) on a shared simulator."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        model_factory: Callable[[], WorkloadModel],
        repository: CentralRepository,
        streams: RandomStreams,
        masking: MaskingPolicy = MaskingPolicy.all_off(),
        profiles: Sequence[NodeProfile] = ALL_PROFILES,
        channel_config_factory: Optional[Callable[[NodeProfile], ChannelConfig]] = None,
        tuning: Optional[InjectorTuning] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.repository = repository
        self.masking = masking
        scoped = streams.fork(f"testbed/{name}")
        self._streams = scoped
        self.injector = FaultInjector(scoped.stream("injector"), tuning=tuning)
        nap_profiles = [p for p in profiles if p.is_nap]
        if len(nap_profiles) != 1:
            raise ValueError("a testbed needs exactly one NAP profile")
        self.nap = NapNode(sim, nap_profiles[0], scoped, repository, name)
        self.panus: List[PanuNode] = []
        for profile in profiles:
            if profile.is_nap:
                continue
            channel_config = (
                channel_config_factory(profile) if channel_config_factory else None
            )
            self.panus.append(
                PanuNode(
                    sim,
                    profile,
                    self.nap,
                    self.injector,
                    scoped,
                    repository,
                    model_factory(),
                    masking,
                    name,
                    channel_config=channel_config,
                )
            )

        self.interference: Optional[InterferenceSource] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every node's workload, collection daemon and noise."""
        self.nap.start()
        for panu in self.panus:
            panu.start()
        if self.interference is not None:
            self.interference.start()

    def enable_interference(
        self,
        mean_interval: float = 7200.0,
        mean_duration: float = 300.0,
        factor: float = 8.0,
    ) -> InterferenceSource:
        """Attach a shared interferer to this lab (call before start)."""
        self.interference = InterferenceSource(
            self.sim,
            [panu.channel for panu in self.panus],
            self._streams.stream("interference"),
            mean_interval=mean_interval,
            mean_duration=mean_duration,
            factor=factor,
        )
        return self.interference

    def schedule_hardware_replacement(self, at: float) -> None:
        """Swap all hardware for identical units at simulated time ``at``."""
        self.sim.schedule_at(at, self._replace_all)

    def _replace_all(self) -> None:
        for panu in self.panus:
            panu.replace_hardware()

    def final_collection(self) -> None:
        """Run one last LogAnalyzer round so no tail data is lost."""
        self.nap.analyzer.collect_once()
        for panu in self.panus:
            panu.analyzer.collect_once()

    # -- convenience -----------------------------------------------------------

    def clients(self):
        return [panu.client for panu in self.panus]

    def node_ids(self) -> List[str]:
        return [self.nap.id] + [p.id for p in self.panus]

    def total_cycles(self) -> int:
        return sum(c.stats.cycles for c in self.clients())

    def total_failures(self) -> int:
        return sum(c.stats.failures for c in self.clients())

    def total_masked(self) -> int:
        return sum(c.stats.masked for c in self.clients())


__all__ = ["Testbed"]

"""Runtime nodes: the NAP and the PANUs, fully wired.

A :class:`PanuNode` owns everything one slave host runs: its radio
channel to the NAP, its Bluetooth stack, its BlueTest client, its two
log files, its LogAnalyzer daemon and its background log-noise process.
The :class:`NapNode` owns the NAP service, its system log and daemon
(the NAP records only system-level data — which is why Giallo never
appears in the user-failure-per-node figure).

Node identifiers in the logs are ``<testbed>:<host>`` so the two
testbeds' same-named machines stay distinguishable in the repository.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.bluetooth.channel import Channel, ChannelConfig
from repro.bluetooth.pan import NapService
from repro.bluetooth.stack import BluetoothStack
from repro.collection.logs import SystemLog, TestLog
from repro.collection.log_analyzer import LogAnalyzer
from repro.collection.messages import BACKGROUND_MESSAGES, variants_for
from repro.collection.repository import CentralRepository
from repro.core.failure_model import SystemFailureType
from repro.faults.injector import FaultInjector
from repro.recovery.masking import MaskingPolicy
from repro.sim import RandomStreams, Simulator, Timeout, spawn
from repro.workload.bluetest import BlueTestClient
from repro.workload.traffic import WorkloadModel
from .nodes import NodeProfile

#: Mean seconds between benign background log entries per node.
NOISE_INFO_MEAN = 180.0
#: Mean seconds between spurious (failure-unrelated) error entries.
NOISE_ERROR_MEAN = 2600.0


def node_id(testbed_name: str, host: str) -> str:
    """The log identifier of one host in one testbed."""
    return f"{testbed_name}:{host}"


def display_name(node: str) -> str:
    """Strip the testbed prefix from a log identifier."""
    return node.split(":", 1)[-1]


class LogNoise:
    """Background system-log chatter of one host.

    Real system logs contain plenty of entries unrelated to any failure;
    the info-severity ones exercise the LogAnalyzer's filtering, and the
    rare spurious error entries give the coalescence analysis realistic
    singleton tuples.
    """

    def __init__(self, sim: Simulator, system_log: SystemLog, rng: random.Random) -> None:
        self._sim = sim
        self._log = system_log
        self._rng = rng

    def run(self) -> Generator:
        """The noise process: benign chatter plus rare spurious errors."""
        error_types = [t for t in SystemFailureType]
        rng = self._rng
        log = self._log
        sim = self._sim
        info_rate = 1.0 / NOISE_INFO_MEAN
        error_ratio = NOISE_INFO_MEAN / NOISE_ERROR_MEAN
        while True:
            yield Timeout(rng.expovariate(info_rate))
            log.set_time(sim.now)
            facility, message = rng.choice(BACKGROUND_MESSAGES)
            log.info(facility, message)
            if rng.random() < error_ratio:
                failure_type = rng.choice(error_types)
                variant = rng.choice(variants_for(failure_type))
                log.error(failure_type, variant)


class NapNode:
    """The Network Access Point host (Giallo)."""

    def __init__(
        self,
        sim: Simulator,
        profile: NodeProfile,
        streams: RandomStreams,
        repository: CentralRepository,
        testbed_name: str,
    ) -> None:
        if not profile.is_nap:
            raise ValueError(f"{profile.name} is not a NAP profile")
        self.sim = sim
        self.profile = profile
        self.testbed_name = testbed_name
        self.id = node_id(testbed_name, profile.name)
        self.system_log = SystemLog(
            self.id,
            streams.stream(f"syslog/{self.id}"),
            clock=lambda: sim.now,
            vendor=profile.vendor,
        )
        self.service = NapService(profile.name, self.system_log)
        self.analyzer = LogAnalyzer(
            self.id,
            TestLog(self.id),  # the NAP records no user-level data
            self.system_log,
            repository,
            phase=streams.stream(f"analyzer/{self.id}").uniform(0, 60),
        )
        self.noise = LogNoise(sim, self.system_log, streams.stream(f"noise/{self.id}"))

    def start(self) -> None:
        self.analyzer.start(self.sim)
        spawn(self.sim, self.noise.run(), name=f"noise:{self.id}")


class PanuNode:
    """One PAN User host: channel + stack + workload + collection."""

    def __init__(
        self,
        sim: Simulator,
        profile: NodeProfile,
        nap: NapNode,
        injector: FaultInjector,
        streams: RandomStreams,
        repository: CentralRepository,
        model: WorkloadModel,
        masking: MaskingPolicy,
        testbed_name: str,
        channel_config: Optional[ChannelConfig] = None,
    ) -> None:
        if profile.is_nap:
            raise ValueError(f"{profile.name} is a NAP, not a PANU")
        self.sim = sim
        self.profile = profile
        self.testbed_name = testbed_name
        self.id = node_id(testbed_name, profile.name)
        self.system_log = SystemLog(
            self.id,
            streams.stream(f"syslog/{self.id}"),
            clock=lambda: sim.now,
            vendor=profile.vendor,
        )
        self.test_log = TestLog(self.id)
        config = channel_config or ChannelConfig(distance=max(profile.distance, 0.1))
        self.channel = Channel(config, streams.stream(f"channel/{self.id}"))
        self.stack = BluetoothStack(
            sim,
            profile.traits,
            self.system_log,
            injector,
            streams.stream(f"stack/{self.id}"),
            self.channel,
            nap.service,
            neighbourhood=[nap.profile.name],
            transport_kind=profile.transport,
        )
        self.client = BlueTestClient(
            sim,
            self.stack,
            self.test_log,
            model,
            streams.stream(f"workload/{self.id}"),
            masking=masking,
            distance=profile.distance,
            testbed_name=testbed_name,
        )
        self.analyzer = LogAnalyzer(
            self.id,
            self.test_log,
            self.system_log,
            repository,
            phase=streams.stream(f"analyzer/{self.id}").uniform(0, 60),
        )
        self.noise = LogNoise(sim, self.system_log, streams.stream(f"noise/{self.id}"))

    def start(self) -> None:
        """Start the workload, collection daemon and noise process."""
        # Clock the system log from the simulator before anything writes.
        self.system_log.set_time(self.sim.now)
        self.client.start()
        self.analyzer.start(self.sim)
        spawn(self.sim, self.noise.run(), name=f"noise:{self.id}")

    def replace_hardware(self) -> None:
        """Mid-campaign hardware swap (reduces aging effects, paper §3)."""
        self.stack.reset()
        self.system_log.set_time(self.sim.now)
        self.system_log.info("kernel", "kernel: system boot")


__all__ = [
    "PanuNode",
    "NapNode",
    "LogNoise",
    "node_id",
    "display_name",
    "NOISE_INFO_MEAN",
    "NOISE_ERROR_MEAN",
]

"""The node catalogue of the paper's testbeds (its Table 1 / figure 1).

Seven heterogeneous hosts: one NAP (Giallo) and six PANUs — four Linux
PCs with different distributions and USB dongles, one Windows XP PC on
the Broadcom stack, and two Linux PDAs with on-board radios driven over
BCSP.  Antennas are fixed at 0.5, 5 and 7 metres from the NAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.faults.injector import NodeTraits


@dataclass(frozen=True)
class NodeProfile:
    """Static description of one testbed machine."""

    name: str
    os: str
    distribution: str
    kernel: str
    cpu: str
    ram_mb: int
    bt_stack: str
    bt_hardware: str
    transport: str  # "usb" | "uart" | "bcsp"
    distance: float  # metres from the NAP antenna (0 for the NAP itself)
    is_nap: bool = False
    is_pda: bool = False
    bind_prone: bool = False

    @property
    def traits(self) -> NodeTraits:
        """The fault-relevant view of this profile."""
        return NodeTraits(
            name=self.name,
            uses_bcsp=self.transport == "bcsp",
            uses_usb=self.transport == "usb",
            bind_prone=self.bind_prone,
            is_nap=self.is_nap,
        )

    @property
    def vendor(self) -> str:
        """Log-vocabulary vendor: BlueZ hosts vs the Broadcom/Windows box."""
        return "broadcom" if "broadcom" in self.bt_stack.lower() else "bluez"


GIALLO = NodeProfile(
    name="Giallo",
    os="Linux",
    distribution="Mandrake",
    kernel="2.4.21-0.13mdk",
    cpu="P4 1.60GHz",
    ram_mb=128,
    bt_stack="BlueZ 2.10",
    bt_hardware="Anycom CC3030",
    transport="usb",
    distance=0.0,
    is_nap=True,
)

VERDE = NodeProfile(
    name="Verde",
    os="Linux",
    distribution="Mandrake",
    kernel="2.4.21-0.13mdk",
    cpu="P3 350MHz",
    ram_mb=256,
    bt_stack="BlueZ 2.10",
    bt_hardware="3COM 3CREB96B",
    transport="usb",
    distance=0.5,
)

MISENO = NodeProfile(
    name="Miseno",
    os="Linux",
    distribution="Debian",
    kernel="2.6.5-1-386",
    cpu="Celeron 700MHz",
    ram_mb=128,
    bt_stack="BlueZ 2.10",
    bt_hardware="Belkin F8T003",
    transport="usb",
    distance=5.0,
)

AZZURRO = NodeProfile(
    name="Azzurro",
    os="Linux",
    distribution="Fedora",
    kernel="2.6.9-1-667",
    cpu="P3 350MHz",
    ram_mb=256,
    bt_stack="BlueZ 2.10",
    bt_hardware="Digicom Palladio",
    transport="usb",
    distance=7.0,
    # The new HAL version first deployed on Fedora Core is behind the
    # hotplug race; bind failures only appeared here and on Win.
    bind_prone=True,
)

WIN = NodeProfile(
    name="Win",
    os="MS Windows XP",
    distribution="Service Pack 2",
    kernel="NT 5.1",
    cpu="P4 1.80GHz",
    ram_mb=512,
    bt_stack="Broadcomm",
    bt_hardware="Sitecom CN-500",
    transport="usb",
    distance=0.5,
    bind_prone=True,
)

IPAQ = NodeProfile(
    name="Ipaq H3870",
    os="Linux",
    distribution="Familiar 0.8.1",
    kernel="2.4.19-rmk6-pxa1-hh37",
    cpu="StrongARM 206MHz",
    ram_mb=64,
    bt_stack="BlueZ 2.10",
    bt_hardware="on board",
    transport="bcsp",
    distance=5.0,
    is_pda=True,
)

ZAURUS = NodeProfile(
    name="Zaurus SL-5600",
    os="Linux",
    distribution="Open Zaurus 3.5.2",
    kernel="2.4.18-rmk7-pxa3-embedix",
    cpu="XScale 400MHz",
    ram_mb=32,
    bt_stack="BlueZ 2.10",
    bt_hardware="on board",
    transport="bcsp",
    distance=7.0,
    is_pda=True,
)

#: The NAP plus the six PANUs, as deployed in both testbeds.
ALL_PROFILES: Tuple[NodeProfile, ...] = (
    GIALLO,
    VERDE,
    MISENO,
    AZZURRO,
    WIN,
    IPAQ,
    ZAURUS,
)

PANU_PROFILES: Tuple[NodeProfile, ...] = tuple(p for p in ALL_PROFILES if not p.is_nap)


def profile_by_name(name: str) -> NodeProfile:
    """Look a profile up by host name."""
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown node: {name!r}")


def distances() -> List[float]:
    """The distinct PANU antenna distances (0.5, 5, 7 m)."""
    return sorted({p.distance for p in PANU_PROFILES})


__all__ = [
    "NodeProfile",
    "GIALLO",
    "VERDE",
    "MISENO",
    "AZZURRO",
    "WIN",
    "IPAQ",
    "ZAURUS",
    "ALL_PROFILES",
    "PANU_PROFILES",
    "profile_by_name",
    "distances",
]

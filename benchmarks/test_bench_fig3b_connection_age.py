"""Figure 3b — packet loss vs number of packets sent before the loss.

Reruns the paper's special experiment: the random workload with N fixed
to 10000 packets and L_S = L_R = 1691 bytes (the BNEP MTU), on Verde
and Win only.  Young connections must fail more — the latent setup
defects of the connection-establishment process.
"""

from repro.core.distributions import packet_loss_by_connection_age
from repro.reporting import format_bar_chart

from conftest import save_artifact

BINS = (0, 100, 250, 500, 1000, 2000, 4000, 7000, 10000)


def test_fig3b_connection_age(benchmark, fig3b_campaign):
    records = list(fig3b_campaign.repository.iter_records(kind="test"))

    series = benchmark(packet_loss_by_connection_age, records, BINS)

    chart = format_bar_chart(
        series,
        title="Packet-loss failures vs packets sent before the loss "
        "(N=10000, L=1691 B, Verde+Win)",
    )
    save_artifact("fig3b_connection_age", chart)

    values = dict(series)
    assert sum(values.values()) > 0, "the experiment produced no losses"
    # Young connections fail more: per-packet loss density in the first
    # 500 packets must exceed the density in the last 3000.
    young = (values["0-100"] + values["100-250"] + values["250-500"]) / 500.0
    old = values["7000-10000"] / 3000.0
    assert young > old

    nodes = {r.node.split(":", 1)[-1] for r in records}
    assert nodes <= {"Verde", "Win"}

"""Figure 3a — packet-loss distribution vs Baseband packet type.

Random-workload data.  Prints both the raw share of losses per type (the
figure's axis) and the per-cycle loss *rate*, which removes the
workload's binomial type-selection bias and exposes the paper's two
findings: multi-slot packets are better, DHx beats DMx.
"""

from repro.core.distributions import packet_loss_by_packet_type
from repro.reporting import format_bar_chart

from conftest import save_artifact

ORDER = ("DM1", "DH1", "DM3", "DH3", "DM5", "DH5")


def test_fig3a_packet_loss_by_type(benchmark, baseline_campaign):
    records = list(
        baseline_campaign.repository.iter_records(kind="test", testbed="random")
    )
    cycles = baseline_campaign.cycles_by_packet_type("random")

    result = benchmark(packet_loss_by_packet_type, records, cycles)

    share_chart = format_bar_chart(
        [(t, result[t]["share_pct"]) for t in ORDER],
        title="Packet-loss failures per packet type (share of losses)",
    )
    rate_chart = format_bar_chart(
        [(t, result[t]["loss_rate_pct"]) for t in ORDER],
        title="Packet-loss rate per cycle using the type (normalised)",
    )
    save_artifact("fig3a_packet_type", share_chart + "\n\n" + rate_chart)

    # Paper findings: prefer multi-slot packets, prefer DHx over DMx.
    # Per byte moved, a small-payload type needs more Baseband packets
    # and therefore more loss opportunities; at same slot count the
    # DMx-vs-DHx gap is the weakest effect, so assertions stay at the
    # statistically robust family level.
    rate = {t: result[t]["loss_rate_pct"] for t in ORDER}
    single_slot = (rate["DM1"] + rate["DH1"]) / 2.0
    three_slot = (rate["DM3"] + rate["DH3"]) / 2.0
    five_slot = (rate["DM5"] + rate["DH5"]) / 2.0
    assert single_slot > three_slot > five_slot  # multi-slot is better
    assert rate["DM1"] > rate["DM5"]  # within the FEC family
    assert rate["DM1"] > rate["DH5"]  # worst type vs best type

"""Table 3 — user failures vs software-implemented recovery actions.

Benchmarks the SIRA-effectiveness mining over the campaign's failure
reports and prints the effectiveness matrix, the per-type severity, and
the failure-mode coverage.
"""

from repro.core.failure_model import UserFailureType
from repro.core.sira_analysis import build_sira_table
from repro.reporting import render_sira_table

from conftest import save_artifact


def test_table3_sira_effectiveness(benchmark, baseline_campaign):
    records = baseline_campaign.unmasked_failures()

    table = benchmark(build_sira_table, records)

    lines = [render_sira_table(table), ""]
    for failure in UserFailureType:
        severity = table.mean_severity(failure)
        if severity is not None:
            lines.append(f"mean severity {failure.value:<28s} {severity:.2f}")
    lines.append(f"failure-mode coverage (SIRA 1-3): {table.coverage():.1f}% "
                 "(paper: 58.4%)")
    save_artifact("table3_sira", "\n".join(lines))

    # Paper anchors: NAP-not-found recovers mostly by BT stack reset;
    # coverage sits near 58 %.
    nap_row = table.row_percentages(UserFailureType.NAP_NOT_FOUND)
    assert max(nap_row, key=nap_row.get) == "bt_stack_reset"
    assert 45.0 <= table.coverage() <= 70.0

"""Shared campaign fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures from a
simulated campaign and saves the rendered artifact under
``benchmarks/results/`` so a run leaves the full evaluation section on
disk.  Campaigns are session-scoped: every bench measures its *analysis*
stage against the same corpus, mirroring how the paper's SAS pass ran
against one repository of collected data.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import api
from repro.core.campaign import run_connection_length_experiment
from repro.recovery.masking import MaskingPolicy

HOURS = 3600.0
RESULTS_DIR = Path(__file__).parent / "results"

#: Campaign length for the benches.  16 simulated hours across the two
#: testbeds yields several hundred user failures — enough for stable
#: percentages while keeping a full bench run under a minute of set-up.
BENCH_DURATION = 16 * HOURS
BENCH_SEED = 77


@pytest.fixture(scope="session")
def baseline_campaign():
    """Masking-off campaign over both testbeds."""
    return api.run(duration=BENCH_DURATION, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def masked_campaign():
    """Masking-on campaign (the paper's enhanced testbed)."""
    return api.run(
        duration=BENCH_DURATION, seed=BENCH_SEED + 1, masking=MaskingPolicy.all_on()
    )


@pytest.fixture(scope="session")
def fig3b_campaign():
    """The figure-3b special experiment (Verde + Win, N=10000, L=1691)."""
    return run_connection_length_experiment(duration=8 * HOURS, seed=BENCH_SEED + 2)


def save_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
    return path

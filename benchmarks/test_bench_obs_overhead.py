"""Infrastructure benchmark — observability overhead.

Two bounds guard the tentpole's design promise:

* **Disabled mode is (near) free.**  With no ``Observability`` bundle
  the stack's instrumented call sites hit the null registry/tracer —
  one attribute lookup and one empty call each.  The campaign
  throughput must stay within 5 % of the recorded baseline of
  ``results/simulator_throughput.txt`` (written before/independently of
  the obs wiring).
* **Enabled mode is bounded.**  A fully instrumented campaign (metrics
  + tracing + profiling) may cost more, but the measured overhead is
  recorded to ``results/obs_overhead.txt`` so regressions are visible
  run over run.
"""

import re

from repro import api
from repro.obs import Observability

from conftest import HOURS, RESULTS_DIR, save_artifact

#: Allowed throughput regression of the un-instrumented path.
DISABLED_BUDGET = 0.05


def _recorded_baseline_speedup() -> float:
    """Parse the '(N,NNNx real time)' figure of the throughput artifact."""
    path = RESULTS_DIR / "simulator_throughput.txt"
    match = re.search(r"\(([\d,]+)x real time\)", path.read_text(encoding="utf-8"))
    assert match, f"no speedup figure found in {path}"
    return float(match.group(1).replace(",", ""))


def _best_wall(fn, rounds: int = 3) -> float:
    """Min-of-N wall time of ``fn`` (noise-robust point estimate)."""
    import time

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_mode_overhead_under_budget(benchmark):
    duration = 2 * HOURS
    baseline_speedup = _recorded_baseline_speedup()

    benchmark.pedantic(
        lambda: api.run(duration=duration, seed=31337),
        rounds=3,
        iterations=1,
    )
    wall = benchmark.stats["min"]
    speedup = duration / wall

    assert speedup >= (1.0 - DISABLED_BUDGET) * baseline_speedup, (
        f"disabled-mode throughput {speedup:,.0f}x fell more than "
        f"{DISABLED_BUDGET:.0%} below the recorded baseline "
        f"{baseline_speedup:,.0f}x"
    )


def test_enabled_mode_overhead_recorded(benchmark):
    duration = 2 * HOURS

    disabled_wall = _best_wall(
        lambda: api.run(duration=duration, seed=31337)
    )

    result = benchmark.pedantic(
        lambda: api.run(
            duration=duration, seed=31337, observability=Observability()
        ),
        rounds=3,
        iterations=1,
    )
    enabled_wall = benchmark.stats["min"]
    overhead = enabled_wall / disabled_wall - 1.0

    obs = result.observability
    save_artifact(
        "obs_overhead",
        f"Observability overhead on a {duration:.0f} s campaign (min of 3):\n"
        f"  disabled: {disabled_wall:.3f} s wall "
        f"({duration / disabled_wall:,.0f}x real time)\n"
        f"  enabled : {enabled_wall:.3f} s wall "
        f"({duration / enabled_wall:,.0f}x real time)\n"
        f"  overhead: {overhead:+.1%} "
        f"(metrics + tracing + profiling all on)\n"
        f"  recorded: {len(obs.tracer.spans)} spans, "
        f"{len(obs.tracer.events)} trace events, "
        f"{obs.profiler.events_processed} profiled engine events",
    )
    # Fully-on observability must stay within an order of magnitude.
    assert overhead < 10.0
    assert obs.tracer.spans, "instrumented campaign recorded no spans"

"""Ablation — electromagnetic interference episodes.

The paper blames part of its packet losses on 2.4 GHz interference.
This ablation attaches a shared interferer (episodes every ~20 min,
~10 min long, 60x burst rate) to the random-workload lab and measures
how the packet-loss intensity responds — inside episodes vs outside.
"""

import pytest

from repro.collection.repository import CentralRepository
from repro.core.classification import classify_user_record
from repro.core.failure_model import UserFailureType
from repro.recovery.masking import MaskingPolicy
from repro.reporting import format_table
from repro.sim import RandomStreams, Simulator
from repro.testbed.testbed import Testbed
from repro.workload.traffic import RandomWorkload

from conftest import HOURS, save_artifact

DURATION = 12 * HOURS
SEED = 1301


@pytest.fixture(scope="module")
def interfered_run():
    sim = Simulator()
    repo = CentralRepository()
    bed = Testbed(
        sim, "random", RandomWorkload, repo, RandomStreams(SEED),
        masking=MaskingPolicy.all_off(),
    )
    source = bed.enable_interference(
        mean_interval=1200.0, mean_duration=600.0, factor=60.0
    )
    bed.start()
    sim.run_until(DURATION)
    bed.final_collection()
    return repo, source


def test_interference_ablation(benchmark, interfered_run):
    repo, source = interfered_run

    def analyse():
        losses = [
            r for r in repo.iter_records(kind="test")
            if classify_user_record(r) is UserFailureType.PACKET_LOSS
        ]
        inside = sum(1 for r in losses if source.was_active_at(r.time))
        return losses, inside

    losses, inside = benchmark(analyse)

    active = source.total_active_time
    quiet = DURATION - active
    rate_inside = inside / (active / 3600.0) if active else 0.0
    rate_outside = (len(losses) - inside) / (quiet / 3600.0) if quiet else 0.0
    table = format_table(
        ["Regime", "time (h)", "packet losses", "losses/h"],
        [
            ["interference episodes", f"{active / 3600:.1f}", str(inside),
             f"{rate_inside:.1f}"],
            ["quiet air", f"{quiet / 3600:.1f}", str(len(losses) - inside),
             f"{rate_outside:.1f}"],
        ],
        title="Packet losses during interference episodes (random WL, 12 h)",
    )
    save_artifact(
        "ablation_interference",
        table + f"\n\nepisodes: {source.episodes}, burst-rate factor 60x",
    )

    assert source.episodes > 5
    assert active > 0
    # Interference must visibly raise the loss intensity.
    assert rate_inside > 1.5 * rate_outside

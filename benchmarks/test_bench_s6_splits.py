"""§6 scalar findings — workload split, idle-time analysis, distance.

Three paper statements:
* the random workload generates most failures (84 % vs 16 %);
* idle connections do not cause more failures (mean T_W before failed
  cycles 27.3 s vs 26.9 s before failure-free ones);
* failure shares are roughly independent of antenna distance
  (33.33 / 37.14 / 29.63 % at 0.5 / 5 / 7 m, bind failures excluded).
"""

from repro.core.distributions import (
    failures_by_distance,
    idle_time_analysis,
    workload_split,
)

from conftest import save_artifact


def test_s6_workload_split_idle_and_distance(benchmark, baseline_campaign):
    records = baseline_campaign.unmasked_failures()

    def analyse():
        return (
            workload_split(records),
            idle_time_analysis(baseline_campaign.client_stats("realistic")),
            failures_by_distance(
                baseline_campaign.repository.iter_records(kind="test"), testbed=None
            ),
        )

    split, idle, distance = benchmark(analyse)

    lines = [
        "Workload split of failures (paper: 84% random / 16% realistic):",
        f"  random    {split.get('random', 0):.1f}%",
        f"  realistic {split.get('realistic', 0):.1f}%",
        "",
        "Idle time before cycles on the same connection (paper: 27.3 vs 26.9 s):",
        f"  before failed cycles      {idle.mean_idle_before_failure:.1f} s"
        f"  (n={idle.failed_cycles})",
        f"  before failure-free cycles {idle.mean_idle_before_ok:.1f} s"
        f"  (n={idle.ok_cycles})",
        f"  idle connections harmless: {idle.idle_connections_harmless}",
        "",
        "Failure share per antenna distance, bind excluded "
        "(paper: 33.3/37.1/29.6%):",
    ]
    for d, share in distance.items():
        lines.append(f"  {d:>4.1f} m  {share:.1f}%")
    save_artifact("s6_splits", "\n".join(lines))

    assert split["random"] > split["realistic"]
    assert split["random"] > 65.0
    if distance and len(distance) == 3:
        assert max(distance.values()) < 55.0

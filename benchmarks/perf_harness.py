"""Timed perf harness: measure the campaign hot path, emit BENCH_campaign.json.

Runs the canonical benchmark campaign (seed-31337, the same workload as
``test_bench_simulator_throughput.py``) in two modes and folds the
measurements into one machine-readable artifact:

* **timed mode** — several uninstrumented rounds through
  :func:`repro.api.run`; the best round gives the canonical wall time
  (events/sec, cycles/sec, simulated-seconds-per-wall-second all derive
  from it, since event and cycle counts are deterministic per seed).
* **profiled mode** — one extra round with the
  :class:`~repro.obs.profile.EngineProfiler` attached, contributing the
  per-stage (per-callsite) breakdown and the queue-depth high-water
  mark.  Profiled wall time is *not* used for throughput (the hook
  inflates call-heavy stages).

Both execution fidelities are measurable: ``--fidelity bit`` (the
default) exercises the per-packet event engine over 2 simulated hours;
``--fidelity batch`` exercises the vectorised fast path over 96
simulated hours (its fixed numpy setup cost amortises over long
campaigns, which is what batch mode exists for) and skips the profiled
round — the engine profiler is per-event instrumentation the batch
executor rejects.  Per-fidelity artifacts are committed side by side
(``BENCH_campaign.json`` / ``BENCH_campaign_batch.json``).

Peak RSS comes from ``resource.getrusage`` — no external profiler
dependency.  Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py \
        --out benchmarks/results/BENCH_campaign.json [--rounds 5]
    PYTHONPATH=src python benchmarks/perf_harness.py --fidelity batch

Compare or update the committed baselines with ``tools/bench_report.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import api
from repro.obs import Observability

#: Canonical workloads: bit matches the simulator-throughput benchmark;
#: batch runs long (its per-campaign setup cost amortises at scale).
BENCH_DURATION = 2 * 3600.0
BENCH_DURATION_BATCH = 96 * 3600.0
BENCH_SEED = 31337
DEFAULT_ROUNDS = 5
RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUTS = {
    "bit": RESULTS_DIR / "BENCH_campaign.json",
    "batch": RESULTS_DIR / "BENCH_campaign_batch.json",
}
DEFAULT_OUT = DEFAULT_OUTS["bit"]

#: Schema version of the emitted JSON; bump on layout changes.
#: v2 added ``workload.fidelity`` (v1 artifacts are implicitly "bit").
SCHEMA_VERSION = 2


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so the artifact is comparable across both.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


def run_timed_rounds(
    rounds: int, duration: float, seed: int, fidelity: str = "bit"
) -> Tuple[List[float], object]:
    """Wall seconds of ``rounds`` uninstrumented runs, plus one result."""
    walls = []
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = api.run(duration=duration, seed=seed, fidelity=fidelity)
        walls.append(time.perf_counter() - started)
    return walls, result


def run_profiled_round(duration: float, seed: int):
    """One profiled campaign; returns (CampaignResult, EngineProfiler)."""
    obs = Observability(metrics=False, tracing=False, profiling=True)
    result = api.run(duration=duration, seed=seed, observability=obs)
    assert obs.profiler is not None
    return result, obs.profiler


def collect(rounds: int = DEFAULT_ROUNDS,
            duration: float = BENCH_DURATION,
            seed: int = BENCH_SEED,
            fidelity: str = "bit") -> Dict[str, object]:
    """Run both modes and assemble the BENCH_campaign payload."""
    walls, result = run_timed_rounds(rounds, duration, seed, fidelity)
    wall_best = min(walls)
    if fidelity == "bit":
        result, profiler = run_profiled_round(duration, seed)
        events = profiler.events_processed
        engine = {
            "queue_depth_high_water": profiler.queue_depth_hwm,
            "callback_seconds_profiled": round(profiler.callback_seconds, 6),
            "stages": {
                key: {
                    "calls": stats.calls,
                    "seconds": round(stats.seconds, 6),
                    "mean_us": round(stats.mean_us, 3),
                }
                for key, stats in profiler.top_callsites(12)
            },
        }
    else:
        # Batch fidelity has no event engine to profile; its "events"
        # are the connection cycles the vectorised executor consumed.
        events = result.events_processed
        engine = {
            "queue_depth_high_water": 0,
            "callback_seconds_profiled": 0.0,
            "stages": {},
        }

    cycles = sum(stats.cycles for stats in result.client_stats())
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "duration_simulated_s": duration,
            "seed": seed,
            "rounds": rounds,
            "fidelity": fidelity,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "throughput": {
            "wall_seconds_best": round(wall_best, 6),
            "wall_seconds_all": [round(w, 6) for w in walls],
            "sim_seconds_per_wall_second": round(duration / wall_best, 1),
            "events_processed": events,
            "events_per_second": round(events / wall_best, 1),
            "cycles_completed": cycles,
            "cycles_per_second": round(cycles / wall_best, 1),
        },
        "memory": {
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "engine": engine,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the timed campaign perf harness and emit "
                    "BENCH_campaign.json.",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: the per-fidelity "
                             f"artifact under {RESULTS_DIR})")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timed rounds; the best one is canonical "
                             f"(default: {DEFAULT_ROUNDS})")
    parser.add_argument("--hours", type=float, default=None,
                        help="simulated hours per round "
                             "(default: 2 for bit, 96 for batch)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--fidelity", choices=("bit", "batch"),
                        default="bit",
                        help="execution mode to benchmark (default: bit)")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.hours is not None and args.hours <= 0:
        parser.error("--hours must be positive")
    if args.hours is None:
        duration = (BENCH_DURATION if args.fidelity == "bit"
                    else BENCH_DURATION_BATCH)
    else:
        duration = args.hours * 3600.0
    out = args.out if args.out is not None else DEFAULT_OUTS[args.fidelity]

    payload = collect(args.rounds, duration, args.seed, args.fidelity)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    throughput = payload["throughput"]
    print(f"BENCH_campaign ({args.fidelity}) written to {out}")
    print(f"  best of {args.rounds}: {throughput['wall_seconds_best']:.3f} s wall "
          f"({throughput['sim_seconds_per_wall_second']:,.0f}x real time)")
    print(f"  events/sec: {throughput['events_per_second']:,.0f}   "
          f"cycles/sec: {throughput['cycles_per_second']:,.0f}   "
          f"peak RSS: {payload['memory']['peak_rss_bytes'] / 2**20:.0f} MiB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

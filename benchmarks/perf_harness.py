"""Timed perf harness: measure the campaign hot path, emit BENCH_campaign.json.

Runs the canonical benchmark campaign (the same 2-simulated-hour,
seed-31337 workload as ``test_bench_simulator_throughput.py``) in two
modes and folds the measurements into one machine-readable artifact:

* **timed mode** — several uninstrumented rounds through
  :func:`repro.api.run`; the best round gives the canonical wall time
  (events/sec, cycles/sec, simulated-seconds-per-wall-second all derive
  from it, since event and cycle counts are deterministic per seed).
* **profiled mode** — one extra round with the
  :class:`~repro.obs.profile.EngineProfiler` attached, contributing the
  per-stage (per-callsite) breakdown and the queue-depth high-water
  mark.  Profiled wall time is *not* used for throughput (the hook
  inflates call-heavy stages).

Peak RSS comes from ``resource.getrusage`` — no external profiler
dependency.  Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py \
        --out benchmarks/results/BENCH_campaign.json [--rounds 5]

Compare or update the committed baseline with ``tools/bench_report.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro import api
from repro.obs import Observability

#: Canonical workload: matches the simulator-throughput benchmark.
BENCH_DURATION = 2 * 3600.0
BENCH_SEED = 31337
DEFAULT_ROUNDS = 5
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_campaign.json"

#: Schema version of the emitted JSON; bump on layout changes.
SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so the artifact is comparable across both.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


def run_timed_rounds(rounds: int, duration: float, seed: int) -> List[float]:
    """Wall seconds of ``rounds`` uninstrumented campaign runs."""
    walls = []
    for _ in range(rounds):
        started = time.perf_counter()
        api.run(duration=duration, seed=seed)
        walls.append(time.perf_counter() - started)
    return walls


def run_profiled_round(duration: float, seed: int):
    """One profiled campaign; returns (CampaignResult, EngineProfiler)."""
    obs = Observability(metrics=False, tracing=False, profiling=True)
    result = api.run(duration=duration, seed=seed, observability=obs)
    assert obs.profiler is not None
    return result, obs.profiler


def collect(rounds: int = DEFAULT_ROUNDS,
            duration: float = BENCH_DURATION,
            seed: int = BENCH_SEED) -> Dict[str, object]:
    """Run both modes and assemble the BENCH_campaign payload."""
    walls = run_timed_rounds(rounds, duration, seed)
    wall_best = min(walls)
    result, profiler = run_profiled_round(duration, seed)

    cycles = sum(stats.cycles for stats in result.client_stats())
    events = profiler.events_processed
    stages = {
        key: {
            "calls": stats.calls,
            "seconds": round(stats.seconds, 6),
            "mean_us": round(stats.mean_us, 3),
        }
        for key, stats in profiler.top_callsites(12)
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "duration_simulated_s": duration,
            "seed": seed,
            "rounds": rounds,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "throughput": {
            "wall_seconds_best": round(wall_best, 6),
            "wall_seconds_all": [round(w, 6) for w in walls],
            "sim_seconds_per_wall_second": round(duration / wall_best, 1),
            "events_processed": events,
            "events_per_second": round(events / wall_best, 1),
            "cycles_completed": cycles,
            "cycles_per_second": round(cycles / wall_best, 1),
        },
        "memory": {
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "engine": {
            "queue_depth_high_water": profiler.queue_depth_hwm,
            "callback_seconds_profiled": round(profiler.callback_seconds, 6),
            "stages": stages,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the timed campaign perf harness and emit "
                    "BENCH_campaign.json.",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default: {DEFAULT_OUT})")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timed rounds; the best one is canonical "
                             f"(default: {DEFAULT_ROUNDS})")
    parser.add_argument("--hours", type=float,
                        default=BENCH_DURATION / 3600.0,
                        help="simulated hours per round (default: 2)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.hours <= 0:
        parser.error("--hours must be positive")

    payload = collect(args.rounds, args.hours * 3600.0, args.seed)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    throughput = payload["throughput"]
    print(f"BENCH_campaign written to {args.out}")
    print(f"  best of {args.rounds}: {throughput['wall_seconds_best']:.3f} s wall "
          f"({throughput['sim_seconds_per_wall_second']:,.0f}x real time)")
    print(f"  events/sec: {throughput['events_per_second']:,.0f}   "
          f"cycles/sec: {throughput['cycles_per_second']:,.0f}   "
          f"peak RSS: {payload['memory']['peak_rss_bytes'] / 2**20:.0f} MiB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

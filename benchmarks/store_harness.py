"""Out-of-core analysis harness: measure the store path, emit BENCH_store.json.

The storage-layer acceptance workload: the failure stream of a
1000-seed sweep, spilled shard by shard into a columnar SQLite failure
store, then analysed end to end (``campaign_statistics`` plus the full
``summarize_repository`` render) **in a fresh subprocess** whose peak
RSS is the gated metric.  The analysis pipeline streams every table off
store cursors, so its memory footprint must stay bounded no matter how
many seeds were swept — that bound is the committed budget this harness
enforces.

The stream is synthesised rather than simulated: a thousand real
campaigns would take hours, while the storage layer only cares about
record volume and vocabulary.  Each shard draws a deterministic batch
of user-level reports and correlated system-level errors from its own
``random.Random(shard_seed)``, using the same message vocabulary the
classifier pins, so every analysis stage does real work.

Modes::

    # Measure and write the artifact (the default paths are canonical):
    PYTHONPATH=src python benchmarks/store_harness.py \
        --out benchmarks/results/BENCH_store.json

    # Gate against the committed budget (CI):
    PYTHONPATH=src python benchmarks/store_harness.py --check

    # Small-scale byte-identity audit against the in-memory oracle:
    PYTHONPATH=src python benchmarks/store_harness.py --verify

Peak RSS comes from ``resource.getrusage`` in the analysis subprocess —
no external profiler dependency.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_store.json"
BASELINE = RESULTS_DIR / "BENCH_store.json"

SCHEMA_VERSION = 1

#: Canonical workload: the record volume of a 1000-seed sweep.  Each
#: shard occupies its own window of the shared campaign clock (as if
#: the sweep's seeds ran back to back), so coalescence and trend
#: analysis see realistic densities at any shard count.
DEFAULT_SHARDS = 1000
DEFAULT_REPORTS_PER_SHARD = 96
SHARD_DURATION = 16 * 3600.0
ROOT_SEED = 9000

#: The synthetic testbed inventory (PANU, NAP) — two testbeds, like the
#: paper's, so workload-split and relationship tables are non-trivial.
PANUS: Tuple[Tuple[str, str], ...] = (
    ("random", "Verde"),
    ("random", "Win"),
    ("random", "Miseno"),
    ("realistic", "Ipaq H3870"),
    ("realistic", "Zaurus"),
)
PAIRS: List[Tuple[str, str]] = [
    (f"{testbed}:{name}", f"{testbed}:Giallo") for testbed, name in PANUS
]

USER_MESSAGES = (
    "bluetest: pan connection cannot be created",
    "bluetest: timeout waiting for expected packet (30 s)",
    "bluetest: nap service not found on access point",
    "bluetest: sdp search terminated abnormally",
    "bluetest: bind on bnep0 failed",
    "bluetest: received payload does not match expected data",
)
SYSTEM_MESSAGES = (
    "hci: command tx timeout (opcode 0x0405)",
    "sdp: request timed out",
    "bnep: device bnep0 occupied",
    "l2cap: connection refused by peer",
)
PACKET_TYPES = (None, "DM1", "DM3", "DM5", "DH1", "DH3", "DH5")
WORKLOADS = {"random": ("random",), "realistic": ("web", "p2p", "streaming")}


def shard_records(shard: int, reports: int):
    """One shard's deterministic synthetic stream (tests, systems)."""
    from repro.collection.records import (
        RecoveryAttempt,
        SystemLogRecord,
        TestLogRecord,
    )
    from repro.recovery.sira import SIRA_NAMES

    rng = random.Random(ROOT_SEED + shard)
    base = shard * SHARD_DURATION
    tests, systems = [], []
    for _ in range(reports):
        testbed, name = rng.choice(PANUS)
        node = f"{testbed}:{name}"
        when = base + rng.uniform(0.0, SHARD_DURATION)
        masked = rng.random() < 0.1
        if masked:
            cascade = ()
        else:
            severity = rng.randint(1, 7)
            cascade = tuple(
                RecoveryAttempt(SIRA_NAMES[i], i == severity - 1,
                                rng.uniform(0.5, 60.0))
                for i in range(severity)
            )
        tests.append(TestLogRecord(
            time=when,
            node=node,
            testbed=testbed,
            workload=rng.choice(WORKLOADS[testbed]),
            message=rng.choice(USER_MESSAGES),
            phase="Data Transfer",
            packet_type=rng.choice(PACKET_TYPES),
            packets_sent=rng.randint(0, 400),
            packets_expected=400,
            scan_flag=rng.random() < 0.5,
            sdp_flag=rng.random() < 0.5,
            distance=rng.choice((1.0, 5.0, 10.0)),
            cycle_on_connection=rng.randint(1, 5),
            idle_before_cycle=rng.uniform(0.0, 60.0),
            masked=masked,
            recovery=cascade,
        ))
        # Correlated system-level evidence near the failure, from the
        # PANU itself or its NAP — what the relationship miner digs up.
        for _ in range(rng.randint(1, 2)):
            source = node if rng.random() < 0.6 else f"{testbed}:Giallo"
            systems.append(SystemLogRecord(
                time=max(base, when - rng.uniform(0.0, 8.0)),
                node=source,
                facility=rng.choice(("hcid", "sdpd", "kernel")),
                severity="error",
                message=rng.choice(SYSTEM_MESSAGES),
            ))
    return tests, systems


def build_store(path: Path, shards: int, reports: int) -> dict:
    """Spill the synthetic sweep into a store, shard by shard."""
    from repro.collection.store import SQLiteStore

    started = time.perf_counter()
    with SQLiteStore(path) as store:
        for shard in range(shards):
            tests, systems = shard_records(shard, reports)
            store.ingest_test(tests)
            store.ingest_system(systems)
        totals = store.summary()
    wall = time.perf_counter() - started
    return {
        "wall_seconds": round(wall, 3),
        "records_per_second": round(totals["total_failure_data_items"] / wall, 1),
        "store_bytes": path.stat().st_size,
        **totals,
    }


def analyze_only(path: Path) -> int:
    """Subprocess body: full analysis over the store, report own RSS."""
    from repro.collection.store import SQLiteStore
    from repro.core.summary import campaign_statistics, summarize_repository

    started = time.perf_counter()
    with SQLiteStore.open(path) as store:
        stats = campaign_statistics(store, PAIRS)
        rendered = summarize_repository(store, PAIRS).render()
    wall = time.perf_counter() - started
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    print(json.dumps({
        "wall_seconds": round(wall, 3),
        "peak_rss_bytes": peak,
        "render_chars": len(rendered),
        "statistics": stats,
    }))
    return 0


def run_analysis_subprocess(path: Path) -> dict:
    """Fresh interpreter → its ru_maxrss measures the analysis alone."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--analyze-only", str(path)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def statistics_fingerprint(stats: dict) -> str:
    """Stable digest of the pooled statistics, for drift detection."""
    canonical = json.dumps(stats, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def verify(shards: int, reports: int) -> int:
    """Byte-identity audit: SQLite backend vs the in-memory oracle."""
    from repro.collection.repository import CentralRepository
    from repro.collection.store import SQLiteStore
    from repro.core.summary import campaign_statistics

    memory = CentralRepository()
    store = SQLiteStore()
    for shard in range(shards):
        tests, systems = shard_records(shard, reports)
        memory.ingest_test(tests)
        memory.ingest_system(systems)
        store.ingest_test(tests)
        store.ingest_system(systems)
    failures = []
    if list(store.iter_records(kind="test")) != list(memory.iter_records(kind="test")):
        failures.append("test streams differ")
    if list(store.iter_records(kind="system")) != list(memory.iter_records(kind="system")):
        failures.append("system streams differ")
    if store.summary() != memory.summary():
        failures.append("summaries differ")
    stats_store = campaign_statistics(store, PAIRS)
    stats_memory = campaign_statistics(memory, PAIRS)
    if stats_store != stats_memory:
        failures.append("campaign statistics differ")
    store.close()
    if failures:
        for failure in failures:
            print(f"VERIFY FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"verify OK: {shards} shard(s) x {reports} report(s) — both "
        f"backends byte-identical ({memory.total_items} records, "
        f"fingerprint {statistics_fingerprint(stats_memory)})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="synthetic sweep size (default: 1000 seeds)")
    parser.add_argument("--records", type=int, default=DEFAULT_REPORTS_PER_SHARD,
                        help="user-level reports per shard (default: 96)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="artifact path (default: the committed baseline)")
    parser.add_argument("--store", type=Path, default=None,
                        help="store path (default: a temporary file)")
    parser.add_argument("--check", action="store_true",
                        help="gate peak analysis RSS and the statistics "
                             "fingerprint against the committed baseline")
    parser.add_argument("--verify", action="store_true",
                        help="small-scale byte-identity audit vs the "
                             "in-memory oracle, then exit")
    parser.add_argument("--analyze-only", type=Path, default=None,
                        help=argparse.SUPPRESS)  # internal subprocess mode
    args = parser.parse_args(argv)

    if args.analyze_only is not None:
        return analyze_only(args.analyze_only)
    if args.verify:
        return verify(min(args.shards, 40), min(args.records, 24))

    with tempfile.TemporaryDirectory(prefix="store-bench-") as scratch:
        store_path = args.store or Path(scratch) / "sweep.store"
        print(f"Spilling {args.shards} shard(s) x {args.records} report(s) "
              f"into {store_path} ...")
        ingest = build_store(store_path, args.shards, args.records)
        print(f"  {ingest['total_failure_data_items']} records in "
              f"{ingest['wall_seconds']} s "
              f"({ingest['records_per_second']:.0f} rec/s, "
              f"{ingest['store_bytes']} bytes on disk)")
        print("Analysing out-of-core in a fresh subprocess ...")
        analysis = run_analysis_subprocess(store_path)

    fingerprint = statistics_fingerprint(analysis["statistics"])
    peak = analysis["peak_rss_bytes"]
    print(f"  Table 1-4 statistics in {analysis['wall_seconds']} s, "
          f"peak RSS {peak / 1e6:.1f} MB, fingerprint {fingerprint}")

    if args.check:
        baseline = json.loads(BASELINE.read_text())
        budget = baseline["budget"]["analyze_peak_rss_bytes"]
        failures = []
        if peak > budget:
            failures.append(
                f"peak analysis RSS {peak} exceeds the committed budget "
                f"{budget} ({peak / budget:.2f}x) — the streaming analysis "
                f"path is no longer out-of-core"
            )
        expected = baseline.get("analysis", {}).get("statistics_fingerprint")
        if (
            expected
            and args.shards == baseline["workload"]["shards"]
            and args.records == baseline["workload"]["reports_per_shard"]
            and fingerprint != expected
        ):
            failures.append(
                f"statistics fingerprint {fingerprint} != committed "
                f"{expected} — the store analysis path changed results"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"check OK: peak RSS within budget "
              f"({peak / budget:.2f}x of {budget / 1e6:.0f} MB)")
        return 0

    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "shards": args.shards,
            "reports_per_shard": args.records,
            "shard_duration_simulated_s": SHARD_DURATION,
            "root_seed": ROOT_SEED,
        },
        "ingest": ingest,
        "analysis": {
            "wall_seconds": analysis["wall_seconds"],
            "peak_rss_bytes": peak,
            "statistics_fingerprint": fingerprint,
        },
        # The gate: analysis RSS must stay under this no matter the
        # sweep size.  Set with ~2x headroom over the measured peak so
        # interpreter/platform jitter never trips it, while a return to
        # materialise-everything analysis (which scales with record
        # count) blows straight through.
        "budget": {
            "analyze_peak_rss_bytes": int(peak * 2),
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"Artifact written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 3c — packet-loss distribution per networked application.

Realistic-workload data.  P2P and streaming — long sessions with
continuous transfer — must dominate; Web/Mail/FTP's intermittent
transfers must experience fewer losses.
"""

from repro.core.distributions import packet_loss_by_application
from repro.reporting import format_bar_chart

from conftest import save_artifact


def test_fig3c_loss_by_application(benchmark, baseline_campaign):
    records = list(
        baseline_campaign.repository.iter_records(kind="test", testbed="realistic")
    )

    result = benchmark(packet_loss_by_application, records)

    order = sorted(result, key=result.get, reverse=True)
    chart = format_bar_chart(
        [(app, result[app]) for app in order],
        title="Packet-loss failures per networked application (Realistic WL)",
    )
    save_artifact("fig3c_application", chart)

    # Paper: P2P worst, streaming second, intermittent apps least.
    assert result.get("p2p", 0) == max(result.values())
    assert result.get("p2p", 0) > result.get("web", 0)
    assert result.get("streaming", 0) > result.get("mail", 0)

"""Table 4 — dependability improvement across the four scenarios.

Benchmarks the MTTF/MTTR/availability estimation (including the manual
scenario replays derived from failure severities) and prints the full
Table 4 with the headline improvement percentages.
"""

from repro.core.dependability import build_dependability_report
from repro.reporting import render_dependability_table

from conftest import save_artifact


def test_table4_dependability_improvement(benchmark, baseline_campaign, masked_campaign):
    baseline_records = baseline_campaign.unmasked_failures()
    masked_records = masked_campaign.unmasked_failures()
    masked_count = masked_campaign.masked_count()

    report = benchmark(
        build_dependability_report, baseline_records, masked_records, masked_count
    )

    lines = [
        render_dependability_table(report),
        "",
        f"Availability improvement vs 'Only Reboot': "
        f"{report.availability_improvement_vs_reboot:.1f}% (paper: up to 36.6%)",
        f"Availability improvement vs 'App restart and Reboot': "
        f"{report.availability_improvement_vs_app_restart:.2f}% (paper: 3.64%)",
        f"Reliability (MTTF) improvement: "
        f"{report.reliability_improvement:.0f}% (paper: 202%)",
    ]
    save_artifact("table4_dependability", "\n".join(lines))

    # The availability ladder is the paper's headline claim.
    assert (
        report["only_reboot"].availability
        < report["app_restart_reboot"].availability
        < report["siras"].availability
        < report["siras_masking"].availability
    )
    assert report["siras"].mttr < report["only_reboot"].mttr
    assert report.reliability_improvement > 50.0

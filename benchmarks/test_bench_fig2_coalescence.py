"""Figure 2 — coalescence-window sensitivity analysis.

Benchmarks the window sweep over one node's merged log and prints the
tuples-vs-window curve with the detected knee (the paper selects 330 s,
at the beginning of the knee).
"""

from repro.core.coalescence import sensitivity_analysis
from repro.core.merge import merge_node_logs
from repro.reporting import format_bar_chart

from conftest import save_artifact


def test_fig2_coalescence_sensitivity(benchmark, baseline_campaign):
    # The paper tunes the window on merged per-node logs; use the busiest
    # node so the curve is well populated.
    repo = baseline_campaign.repository
    pairs = baseline_campaign.node_nap_pairs()
    merged_by_node = {
        node: merge_node_logs(repo, node, nap) for node, nap in pairs
    }
    node, merged = max(merged_by_node.items(), key=lambda kv: len(kv[1]))

    result = benchmark(sensitivity_analysis, merged)

    from repro.reporting.charts import format_series_plot

    plot = format_series_plot(
        [(p.window, p.tuples_pct) for p in result.points],
        title=f"Tuples (% of entries) vs coalescence window — node {node}",
        log_x=True,
        mark_x=result.knee_window,
        x_label="window (s)",
        y_label="tuples as % of entries",
    )
    bars = format_bar_chart(
        [(f"{p.window:>6.0f}s", p.tuples_pct) for p in result.points],
        title="Same curve, tabulated",
    )
    # The knee rationale, measured: collapses vs truncations per window.
    from repro.core.coalescence import quality_curve
    from repro.reporting import format_table

    curve = quality_curve(merged, windows=[30, 120, 330, 900, 3600])
    quality_table = format_table(
        ["window (s)", "tuples", "collapses", "truncations"],
        [
            [f"{q.window:.0f}", str(q.tuples), str(q.collapses), str(q.truncations)]
            for q in curve
        ],
        title="Collapse/truncation trade-off",
    )
    save_artifact(
        "fig2_coalescence",
        plot + "\n\n" + bars + "\n\n" + quality_table
        + f"\n\nknee detected at {result.knee_window:.0f} s "
        "(paper: 330 s, 'exactly at the beginning of the knee')",
    )

    counts = [p.tuples for p in result.points]
    assert counts == sorted(counts, reverse=True)  # widening never splits
    assert 30.0 <= result.knee_window <= 1800.0  # the knee sits in minutes

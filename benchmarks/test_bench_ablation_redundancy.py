"""Ablation — redundant overlapped piconets (the paper's future work).

Two comparisons:

* **live** — a campaign whose PANUs actually fail over to a second,
  overlapped NAP for link/stack-scoped failures (mechanism evidence);
* **replay** — the plain campaign's own failure stream replayed with
  failovers substituted for its link/stack-scoped recoveries, giving a
  same-stream, noise-free estimate of the MTTR/availability gain —
  the same derivation style the paper uses for its manual scenarios.
"""

import pytest

from repro import api
from repro.core.dependability import compute_scenario
from repro.core.sira_analysis import record_severity
from repro.extensions import (
    FAILOVER_MAX_SCOPE,
    run_redundant_campaign,
)
from repro.extensions.redundant import failover_replay_mttr
from repro.reporting import format_table

from conftest import HOURS, save_artifact

DURATION = 10 * HOURS
SEED = 901


@pytest.fixture(scope="module")
def runs():
    plain = api.run(duration=DURATION, seed=SEED, workloads=("random",))
    redundant = run_redundant_campaign(duration=DURATION, seed=SEED)
    return plain, redundant


def test_redundant_piconet_ablation(benchmark, runs):
    plain, redundant = runs
    plain_records = plain.unmasked_failures()

    def summarise():
        return (
            compute_scenario(plain_records, "siras"),
            failover_replay_mttr(plain_records),
            compute_scenario(redundant.unmasked_failures(), "siras"),
        )

    plain_metrics, replay_mttr, red_metrics = benchmark(summarise)

    failovers = redundant.testbeds["random"].total_failovers()
    replay_availability = plain_metrics.mttf / (plain_metrics.mttf + replay_mttr)
    table = format_table(
        ["Configuration", "MTTF (s)", "MTTR (s)", "Availability"],
        [
            ["single piconet (measured)", f"{plain_metrics.mttf:.0f}",
             f"{plain_metrics.mttr:.1f}", f"{plain_metrics.availability:.4f}"],
            ["redundant (replayed, same stream)", f"{plain_metrics.mttf:.0f}",
             f"{replay_mttr:.1f}", f"{replay_availability:.4f}"],
            ["redundant (live run)", f"{red_metrics.mttf:.0f}",
             f"{red_metrics.mttr:.1f}", f"{red_metrics.availability:.4f}"],
        ],
        title="Redundant overlapped piconets (random WL, 10 h)",
    )
    save_artifact(
        "ablation_redundancy",
        table + f"\n\nlive failovers performed: {failovers} "
        "(link/stack-scoped failures rerouted to the second NAP)",
    )

    # Same-stream replay: strictly better, deterministically.
    assert replay_mttr < plain_metrics.mttr
    assert replay_availability > plain_metrics.availability
    # Live mechanism: failovers happened and were fast.
    assert failovers > 0
    fast = [
        r for r in redundant.unmasked_failures()
        if r.recovered_by == "piconet_failover"
    ]
    assert fast and all(r.time_to_recover < 10.0 for r in fast)
    # Failures too deep for redundancy kept their cascade.
    deep = [
        r for r in redundant.unmasked_failures()
        if (record_severity(r) or 0) > FAILOVER_MAX_SCOPE
    ]
    assert deep

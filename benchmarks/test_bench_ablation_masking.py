"""Ablation — which masking strategy buys what.

The paper reports the combined effect of its three masking strategies
(58 % of failures masked).  This ablation runs one campaign per single
strategy and prints each strategy's individual contribution to the
masked share and to the MTTF — the design-choice evidence DESIGN.md
calls out.
"""

import pytest

from repro import api
from repro.core.dependability import compute_scenario
from repro.recovery.masking import MaskingPolicy
from repro.reporting import format_table

from conftest import HOURS, save_artifact

ABLATION_DURATION = 8 * HOURS

POLICIES = {
    "none": MaskingPolicy.all_off(),
    "bind_wait only": MaskingPolicy(bind_wait=True),
    "retry only": MaskingPolicy(retry=True),
    "sdp_before_pan only": MaskingPolicy(sdp_before_pan=True),
    "all three": MaskingPolicy.all_on(),
}


@pytest.fixture(scope="module")
def ablation_runs():
    runs = {}
    for name, policy in POLICIES.items():
        runs[name] = api.run(
            duration=ABLATION_DURATION, seed=555, masking=policy,
            workloads=("random",),
        )
    return runs


def test_masking_ablation(benchmark, ablation_runs):
    def summarise():
        rows = {}
        for name, result in ablation_runs.items():
            records = result.unmasked_failures()
            masked = result.masked_count()
            metrics = compute_scenario(records, "siras_masking", masked_count=masked)
            total = masked + len(records)
            rows[name] = (
                100.0 * masked / total if total else 0.0,
                metrics.mttf,
                len(records),
            )
        return rows

    rows = benchmark(summarise)

    table = format_table(
        ["Masking policy", "% masked", "MTTF (s)", "residual failures"],
        [
            [name, f"{share:.1f}", f"{mttf:.0f}", str(count)]
            for name, (share, mttf, count) in rows.items()
        ],
        title="Masking strategy ablation (random WL, 8 h per run)",
    )
    save_artifact("ablation_masking", table)

    assert rows["none"][0] == 0.0
    # The retry strategy covers the two big rows (SDP search, NAP not
    # found) and must be the single largest contributor.
    assert rows["retry only"][0] > rows["bind_wait only"][0]
    assert rows["retry only"][0] > rows["sdp_before_pan only"][0]
    # Everything together masks the most and stretches the MTTF.
    assert rows["all three"][0] >= rows["retry only"][0]
    assert rows["all three"][1] > rows["none"][1]

"""Figure 4 — user-failure frequency distribution per host.

Realistic-workload data, no masking.  Giallo (the NAP) never appears —
it records only system-level data; bind failures appear only on Azzurro
and Win; switch-role-command failures concentrate on the PDAs.
"""

from repro.core.distributions import failures_by_node
from repro.core.failure_model import UserFailureType
from repro.reporting import format_table, percent

from conftest import save_artifact

SHOWN_TYPES = [
    UserFailureType.SDP_SEARCH_FAILED,
    UserFailureType.NAP_NOT_FOUND,
    UserFailureType.PACKET_LOSS,
    UserFailureType.PAN_CONNECT_FAILED,
    UserFailureType.BIND_FAILED,
    UserFailureType.SW_ROLE_COMMAND_FAILED,
]


def test_fig4_failures_by_node(benchmark, baseline_campaign):
    records = list(
        baseline_campaign.repository.iter_records(kind="test", testbed="realistic")
    )

    result = benchmark(failures_by_node, records)

    headers = ["Host"] + [t.value for t in SHOWN_TYPES]
    rows = [
        [host] + [percent(result[host].get(t.value, 0.0)) for t in SHOWN_TYPES]
        for host in sorted(result)
    ]
    text = format_table(
        headers, rows,
        title="User failures per node, % of each type (Realistic WL)",
    )
    save_artifact("fig4_nodes", text)

    assert "Giallo" not in result  # the NAP records only system data
    bind = UserFailureType.BIND_FAILED.value
    for host, shares in result.items():
        if shares.get(bind, 0) > 0:
            assert host in ("Azzurro", "Win")

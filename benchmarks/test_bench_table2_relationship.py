"""Table 2 — the error-failure relationship.

Benchmarks the full merge-and-coalesce mining pass (time-based merge,
tupling at the 330 s window, evidence counting) and prints the resulting
relationship table with its TOT column and Total row.
"""

from repro.core.failure_model import UserFailureType
from repro.core.relationship import build_relationship_table
from repro.reporting import render_relationship_table

from conftest import save_artifact


def test_table2_error_failure_relationship(benchmark, baseline_campaign):
    repo = baseline_campaign.repository
    pairs = baseline_campaign.node_nap_pairs()

    table = benchmark(build_relationship_table, repo, pairs)

    text = render_relationship_table(table)
    folded = table.component_totals()
    summary = ", ".join(f"{k} {v:.1f}%" for k, v in
                        sorted(folded.items(), key=lambda kv: -kv[1]))
    save_artifact("table2_relationship", text + "\n\nComponent totals: " + summary)

    # Shape checks against the paper's readable anchors.
    pan_row = table.row_percentages(UserFailureType.PAN_CONNECT_FAILED)
    sdp_share = pan_row.get("SDP:NAP", 0) + pan_row.get("SDP:local", 0)
    assert sdp_share > 50.0  # paper: 96.5 % of PAN-connect failures are SDP
    shares = table.shares()
    assert shares[UserFailureType.SDP_SEARCH_FAILED] > 25.0
    assert shares[UserFailureType.PACKET_LOSS] > 20.0

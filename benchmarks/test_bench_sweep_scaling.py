"""Infrastructure benchmark — sweep scaling across worker processes.

Not a paper artifact: measures how the multi-seed sweep pool
(:mod:`repro.parallel`) scales a fixed 4-seed sweep at 1, 2 and 4
workers, and proves along the way that the merged tables stay
byte-identical at every job count.  The speedup assertion only arms on
machines with >= 4 CPUs — on smaller boxes the numbers are still
recorded so the perf trajectory shows what the hardware allowed.
"""

import os
import time

from repro.api import ExperimentConfig

from conftest import HOURS, save_artifact

SEEDS = 4
JOB_COUNTS = (1, 2, 4)
CONFIG = ExperimentConfig(duration=8 * HOURS, seed=20_04)
SPEC = CONFIG.spec()


def test_sweep_scaling():
    cpus = os.cpu_count() or 1
    walls = {}
    renders = {}
    for jobs in JOB_COUNTS:
        t0 = time.perf_counter()
        result = CONFIG.sweep(SEEDS, jobs=jobs)
        walls[jobs] = time.perf_counter() - t0
        renders[jobs] = result.render()

    speedups = {jobs: walls[1] / walls[jobs] for jobs in JOB_COUNTS}
    lines = [
        f"Sweep scaling: {SEEDS} seeds x {SPEC.duration:.0f} s simulated "
        f"each, on {cpus} CPU(s).",
    ]
    for jobs in JOB_COUNTS:
        lines.append(
            f"  jobs={jobs}: {walls[jobs]:6.2f} s wall "
            f"({speedups[jobs]:.2f}x vs serial)"
        )
    lines.append(
        "Merged tables byte-identical across job counts: "
        f"{all(renders[j] == renders[1] for j in JOB_COUNTS)}."
    )
    save_artifact("sweep_scaling", "\n".join(lines))

    # Determinism is asserted unconditionally; it must hold anywhere.
    for jobs in JOB_COUNTS:
        assert renders[jobs] == renders[1]
    # The scaling target only makes sense with the cores to scale onto.
    if cpus >= 4:
        assert speedups[4] >= 1.8, (
            f"4-worker sweep only {speedups[4]:.2f}x faster than serial"
        )

"""Table 1 — the Bluetooth PAN failure model.

Regenerates the taxonomy and benchmarks the classification stage that
produces it: every raw message of the campaign is classified into the
model's user/system types.
"""

from repro.core.classification import (
    classification_report,
    classify_system_record,
    classify_user_record,
)
from repro.core.failure_model import FailureModel

from conftest import save_artifact


def test_table1_failure_model(benchmark, baseline_campaign):
    repo = baseline_campaign.repository
    user_records = list(repo.iter_records(kind="test"))
    system_records = list(repo.iter_records(kind="system"))

    def classify_all():
        users = [classify_user_record(r) for r in user_records]
        systems = [classify_system_record(r) for r in system_records]
        return users, systems

    users, systems = benchmark(classify_all)

    report = classification_report(user_records, system_records)
    lines = [
        FailureModel.as_table(),
        "",
        f"Collected failure data items: {repo.total_items} "
        f"({report['user_total']} user-level reports, "
        f"{report['system_total']} system-level entries)",
        f"Classified: {report['user_classified']}/{report['user_total']} user, "
        f"{report['system_classified']}/{report['system_total']} system",
    ]
    save_artifact("table1_failure_model", "\n".join(lines))

    # Every user report must classify; system entries include noise.
    assert report["user_classified"] == report["user_total"]
    assert report["system_classified"] > 0
    assert len(users) == report["user_total"]

"""The reproduction scorecard: every paper claim, graded live.

Evaluates the full claim set (TOT shares, Table 2/3/4 anchors, the
figure orderings, the §6 scalars) against the benchmark campaigns and
prints the verdict table — the one-page answer to "does this
reproduction hold?".
"""

from repro.core.scorecard import evaluate

from conftest import save_artifact


def test_reproduction_scorecard(benchmark, baseline_campaign, masked_campaign):
    scorecard = benchmark(evaluate, baseline_campaign, masked_campaign)

    save_artifact("scorecard", scorecard.render())

    failed = [c.claim_id for c in scorecard.failed_claims()]
    assert scorecard.total >= 12, "claim set unexpectedly small"
    # The reproduction must hold essentially across the board; a single
    # marginal-band miss on one seed is tolerated.
    assert scorecard.pass_rate >= 0.9, f"failed claims: {failed}"

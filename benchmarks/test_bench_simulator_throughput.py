"""Infrastructure benchmark — campaign simulation throughput.

Not a paper artifact: measures how fast the substrate simulates testbed
time (simulated seconds per wall second), which bounds how long a
paper-scale (18-month) campaign would take.
"""

from repro import api

from conftest import HOURS, save_artifact


def test_campaign_throughput(benchmark):
    duration = 2 * HOURS

    result = benchmark.pedantic(
        lambda: api.run(duration=duration, seed=31337),
        rounds=3,
        iterations=1,
    )

    wall = benchmark.stats["mean"]
    speedup = duration / wall
    save_artifact(
        "simulator_throughput",
        f"Simulated {duration:.0f} s of both testbeds in {wall:.2f} s wall "
        f"({speedup:,.0f}x real time).\n"
        f"An 18-month campaign (the paper's span) would take "
        f"~{18 * 30 * 86400 / speedup / 60:.1f} minutes.",
    )
    assert speedup > 100.0
    assert result.repository.total_items > 0
